//! The hand-rolled `BENCH_sim.json` splice protocol.
//!
//! Several bench targets share one JSON report: a top-level object with a
//! `workloads` map holding one entry per tracked scenario. No JSON
//! library — readers string-scan for `"key": <number>`, and writers
//! replace their own entry by brace-depth removal plus a tail splice, so
//! each bench updates its row without disturbing its neighbours.
//!
//! The `baseline` sub-object of an entry is sticky: the first run ever
//! recorded. Because some benches rewrite the whole file, callers look
//! for their prior baseline in the `SSDKEEPER_BENCH_PREV` snapshot
//! (taken by `scripts/bench.sh` before any bench runs) before falling
//! back to the live report and finally to the fresh numbers.

/// Reads `"key": <number>` out of `section`'s object, scanning forward
/// from the first occurrence of the section name in `text`.
pub fn json_number(text: &str, section: &str, key: &str) -> Option<f64> {
    let sec = text.find(&format!("\"{section}\""))?;
    let rest = &text[sec..];
    let k = rest.find(&format!("\"{key}\""))?;
    let after = &rest[k..];
    let colon = after.find(':')?;
    let tail = after[colon + 1..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

/// Reads `key` from the `baseline` object of `workload`'s entry.
pub fn baseline_number(text: &str, workload: &str, key: &str) -> Option<f64> {
    let start = text.find(&format!("\"{workload}\""))?;
    json_number(&text[start..], "baseline", key)
}

/// Removes `"name": { ... }` (and the comma joining it to its neighbor)
/// from a workloads object, by brace-depth scan.
pub fn strip_entry(text: &str, name: &str) -> String {
    let Some(key) = text.find(&format!("\"{name}\"")) else {
        return text.to_string();
    };
    let Some(open) = text[key..].find('{').map(|i| key + i) else {
        return text.to_string();
    };
    let mut depth = 0usize;
    let mut end = text.len();
    for (i, c) in text[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    end = open + i + 1;
                    break;
                }
            }
            _ => {}
        }
    }
    let before = text[..key].trim_end();
    if before.ends_with(',') {
        // Not the first entry: also drop the comma that joined it.
        format!("{}{}", &text[..before.len() - 1], &text[end..])
    } else {
        // First entry: drop the comma in front of its successor instead.
        let after_ws = text[end..].len() - text[end..].trim_start().len();
        let mut cut = end;
        if text[end..].trim_start().starts_with(',') {
            cut = end + after_ws + 1;
        }
        format!("{}{}", &text[..key], &text[cut..])
    }
}

/// Replaces (or appends) `name`'s entry in a report text. `entry` must
/// be the fully formatted `    "name": { ... }` block — four-space
/// indent, no trailing comma or newline. When `existing` holds no
/// recognizable workloads object, a fresh report skeleton is written
/// around the entry instead.
pub fn splice_entry(existing: &str, name: &str, entry: &str) -> String {
    let cleaned = strip_entry(existing, name);
    match cleaned.rfind("\n  }\n}") {
        Some(tail) => {
            // An empty workloads object (this was the only entry) takes
            // the entry without a joining comma.
            let joiner = if cleaned[..tail].trim_end().ends_with('{') {
                ""
            } else {
                ","
            };
            format!("{}{joiner}\n{entry}{}", &cleaned[..tail], &cleaned[tail..])
        }
        None => format!(
            "{{\n  \"bench\": \"sim_throughput\",\n  \"workloads\": {{\n{entry}\n  }}\n}}\n"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const REPORT: &str = "{\n  \"bench\": \"sim_throughput\",\n  \"workloads\": {\n    \
        \"alpha\": {\n      \"baseline\": { \"events\": 100, \"events_per_sec\": 5.5 },\n      \
        \"current\": { \"events\": 120 }\n    },\n    \
        \"beta\": {\n      \"median_ns\": 42\n    }\n  }\n}\n";

    #[test]
    fn json_number_reads_scoped_values() {
        assert_eq!(json_number(REPORT, "baseline", "events"), Some(100.0));
        assert_eq!(json_number(REPORT, "current", "events"), Some(120.0));
        assert_eq!(json_number(REPORT, "baseline", "events_per_sec"), Some(5.5));
        assert_eq!(json_number(REPORT, "baseline", "missing"), None);
        assert_eq!(baseline_number(REPORT, "alpha", "events"), Some(100.0));
        assert_eq!(baseline_number(REPORT, "beta", "events"), None);
    }

    #[test]
    fn strip_removes_only_the_named_entry() {
        let without_alpha = strip_entry(REPORT, "alpha");
        assert!(!without_alpha.contains("alpha"));
        assert!(without_alpha.contains("\"beta\""));
        let without_beta = strip_entry(REPORT, "beta");
        assert!(without_beta.contains("\"alpha\""));
        assert!(!without_beta.contains("beta"));
        assert_eq!(strip_entry(REPORT, "gamma"), REPORT);
    }

    #[test]
    fn splice_replaces_appends_and_bootstraps() {
        let entry = "    \"beta\": {\n      \"median_ns\": 7\n    }";
        let replaced = splice_entry(REPORT, "beta", entry);
        assert!(replaced.contains("\"median_ns\": 7"));
        assert!(!replaced.contains("\"median_ns\": 42"));
        assert!(replaced.contains("\"alpha\""));

        let appended = splice_entry(REPORT, "gamma", "    \"gamma\": {\n      \"x\": 1\n    }");
        assert!(appended.contains("\"alpha\"") && appended.contains("\"beta\""));
        assert!(appended.contains("\"gamma\""));

        let fresh = splice_entry("", "solo", "    \"solo\": {\n      \"x\": 1\n    }");
        assert!(fresh.starts_with("{\n  \"bench\""));
        assert!(fresh.contains("\"solo\""));
        // Re-splicing into a single-entry report must not leave a
        // dangling comma after the opening brace.
        let resplice = splice_entry(&fresh, "solo", "    \"solo\": {\n      \"x\": 2\n    }");
        assert!(resplice.contains("\"x\": 2"));
        assert!(!resplice.contains("{,"));
    }
}
