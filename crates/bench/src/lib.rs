//! Shared fixtures and the timing harness for the benchmark targets.
//!
//! Each bench target regenerates (a scaled-down instance of) one paper
//! artefact; this crate centralizes the workload/model construction so the
//! benches measure simulation and inference, not setup. The [`harness`]
//! module provides the warmup-then-measure timing loop the `benches/`
//! binaries use in place of an external benchmark framework.

pub mod harness;
pub mod report;

use flash_sim::{IoRequest, SsdConfig};
use ssdkeeper::label::EvalConfig;
use ssdkeeper::learner::{DatasetSpec, LabelledDataset, Learner};
use ssdkeeper::{ChannelAllocator, FeatureVector};
use workloads::{generate_tenant_stream, mix_chronological, TenantSpec};

/// Device model used by benches: Table I timing with a small block count
/// so construction stays cheap.
pub fn bench_ssd() -> SsdConfig {
    SsdConfig {
        blocks_per_plane: 64,
        pages_per_block: 32,
        ..SsdConfig::paper_table1()
    }
}

/// A two-tenant writer/reader mix at the given write proportion.
pub fn two_tenant_mix(write_pct: u32, requests: usize, total_iops: f64) -> Vec<IoRequest> {
    let p = write_pct as f64 / 100.0;
    let writer = TenantSpec::synthetic("writer", 1.0, (total_iops * p).max(1.0), 1 << 10);
    let reader = TenantSpec::synthetic("reader", 0.0, (total_iops * (1.0 - p)).max(1.0), 1 << 10);
    let n_w = ((requests as f64) * p).round() as usize;
    let w = generate_tenant_stream(&writer, 0, n_w.max(1), 11);
    let r = generate_tenant_stream(&reader, 1, (requests - n_w).max(1), 22);
    mix_chronological(&[w, r], requests)
}

/// A four-tenant mixed trace with mixed dominances.
pub fn four_tenant_mix(requests: usize, total_iops: f64) -> Vec<IoRequest> {
    let ratios = [0.9, 0.1, 0.85, 0.05];
    let shares = [0.4, 0.3, 0.2, 0.1];
    let streams: Vec<Vec<IoRequest>> = ratios
        .iter()
        .zip(shares.iter())
        .enumerate()
        .map(|(t, (&wr, &share))| {
            let spec =
                TenantSpec::synthetic(format!("t{t}"), wr, (total_iops * share).max(1.0), 1 << 10);
            generate_tenant_stream(
                &spec,
                t as u16,
                (requests as f64 * share * 1.3) as usize,
                t as u64,
            )
        })
        .collect();
    mix_chronological(&streams, requests)
}

/// A tiny labelled dataset (enough rows to drive a training epoch).
pub fn tiny_dataset() -> LabelledDataset {
    let spec = DatasetSpec {
        samples: 24,
        requests_per_sample: 400,
        max_total_iops: 120_000.0,
        lpn_space: 1 << 10,
        label_tolerance: 0.01,
        eval: EvalConfig {
            ssd: bench_ssd(),
            hybrid: false,
            pool: parallel::PoolConfig::with_workers(1),
        },
    };
    Learner::new(spec).generate_dataset(17)
}

/// An (untrained but correctly shaped) channel allocator.
pub fn bench_allocator() -> ChannelAllocator {
    ChannelAllocator::new(
        ann::Network::paper_topology(ann::Activation::Logistic, 3),
        120_000.0,
    )
}

/// A representative feature vector for inference benches.
pub fn bench_features() -> FeatureVector {
    FeatureVector {
        intensity_level: 16,
        rw_char: [0, 1, 0, 1],
        shares: [0.4, 0.3, 0.2, 0.1],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_construct() {
        assert_eq!(two_tenant_mix(30, 200, 50_000.0).len(), 200);
        assert_eq!(four_tenant_mix(200, 50_000.0).len(), 200);
        assert!(tiny_dataset().samples.len() == 24);
        let _ = bench_allocator().predict(&bench_features());
    }
}
