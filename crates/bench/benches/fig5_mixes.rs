//! Figure 5 bench: the three execution modes on a four-tenant mix —
//! `Shared` baseline, `Isolated` baseline, and the adaptive SSDKeeper run
//! (observe → predict → re-allocate), with and without hybrid page
//! allocation.

use bench::harness::Group;
use bench::{bench_allocator, bench_ssd, four_tenant_mix};
use ssdkeeper::keeper::{Keeper, KeeperConfig, RunSpec};
use ssdkeeper::Strategy;

fn fig5_modes() {
    let trace = four_tenant_mix(3_000, 80_000.0);
    let lpn_spaces = [1u64 << 10; 4];
    let config = |hybrid| KeeperConfig {
        ssd: bench_ssd(),
        observe_window_ns: 5_000_000,
        hybrid,
    };
    let keeper = Keeper::new(config(false), bench_allocator());
    let keeper_hybrid = Keeper::new(config(true), bench_allocator());

    let mut group = Group::new("fig5_modes");
    group.sample_size(10);
    group.bench("shared_baseline", || {
        keeper
            .run(RunSpec::fixed(&trace, &lpn_spaces, Strategy::Shared))
            .unwrap()
    });
    group.bench("isolated_baseline", || {
        keeper
            .run(RunSpec::fixed(&trace, &lpn_spaces, Strategy::Isolated))
            .unwrap()
    });
    group.bench("ssdkeeper_adaptive", || {
        keeper
            .run(RunSpec::adapt_once(&trace, &lpn_spaces))
            .unwrap()
    });
    group.bench("ssdkeeper_adaptive_hybrid", || {
        keeper_hybrid
            .run(RunSpec::adapt_once(&trace, &lpn_spaces))
            .unwrap()
    });
    group.finish();
}

fn main() {
    fig5_modes();
}
