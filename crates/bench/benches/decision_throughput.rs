//! Decision-layer throughput — the tracked `decision_throughput` and
//! `label_farm` gates.
//!
//! **Decisions.** One keeper window's worth of feature vectors (batch
//! 256) pushed through the allocator three ways: row-at-a-time
//! [`ssdkeeper::ChannelAllocator::predict`] (the baseline), the batched
//! scratch-buffer path (`predict_batch_into`, the current number), and
//! the batched path on the i16 quantized backend. All three must agree
//! decision-for-decision (the batch kernel is row-independent and the
//! quantized backend is arg-max equivalent on the feature domain), so
//! the timing difference is pure execution strategy, never different
//! answers. `decisions_per_sec` is derived from the median of N timed
//! passes.
//!
//! **Labels.** The parallel label farm
//! ([`ssdkeeper::learner::Learner::generate_dataset_parallel`]) at one
//! worker (baseline) versus the multi-worker pool (current); both
//! produce byte-identical datasets (asserted), so `labels_per_sec`
//! measures the fan-out alone. On a single-core container the entry is
//! annotated `"scaling_meaningful": false`, the speedup is printed as
//! informational, and the gated `current` row is the single-worker run
//! (oversubscribing one hardware thread measures context switching, not
//! the farm).
//!
//! When `SSDKEEPER_BENCH_JSON` names a report, `decision_throughput` and
//! `label_farm` entries are spliced into its `workloads` object
//! ([`bench::report`]) without disturbing the other entries; `ssdtrace
//! diff` then compares the `*_per_sec` rows against the pre-run snapshot
//! under the strict gate. With `SSDKEEPER_BENCH_STRICT=1` this binary
//! additionally enforces the batching acceptance bar in-process: batched
//! decisions at batch ≥ 64 must run ≥ 3× the row-at-a-time baseline.
//!
//! Env knobs: `SSDKEEPER_BENCH_ITERS` (default 5), `SSDKEEPER_BENCH_WARMUP`
//! (default 1), `SSDKEEPER_BENCH_JSON`, `SSDKEEPER_BENCH_STRICT`.

use bench::harness::black_box;
use bench::report;
use parallel::PoolConfig;
use simrng::{Rng, SimRng};
use ssdkeeper::learner::{DatasetSpec, Learner};
use ssdkeeper::{DecisionScratch, FeatureVector};
use std::time::Instant;

/// Feature vectors per batched decision call (one fleet window's worth).
const BATCH: usize = 256;
/// Batch passes folded into one timed sample, so a sample is far above
/// timer resolution.
const PASSES: usize = 50;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Median wall time of `iters` timed runs of `f`, in nanoseconds.
fn median_ns(iters: usize, warmup: usize, mut f: impl FnMut()) -> u64 {
    for _ in 0..warmup {
        f();
    }
    let mut samples: Vec<u64> = (0..iters)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[(samples.len() - 1) / 2]
}

/// A deterministic corpus of realistic keeper feature vectors.
fn corpus(n: usize) -> Vec<FeatureVector> {
    let mut rng = SimRng::seed_from_u64(0xD0C5);
    (0..n)
        .map(|_| {
            let mut shares = [0.0f64; 4];
            let mut total = 0.0;
            for s in shares.iter_mut() {
                *s = rng.gen_range(0.05..1.0);
                total += *s;
            }
            for s in shares.iter_mut() {
                *s /= total;
            }
            FeatureVector {
                intensity_level: rng.gen_range(0u32..20),
                rw_char: [
                    rng.gen_range(0u8..2),
                    rng.gen_range(0u8..2),
                    rng.gen_range(0u8..2),
                    rng.gen_range(0u8..2),
                ],
                shares,
            }
        })
        .collect()
}

/// The label-farm workload: small enough that a full farm pass is the
/// unit of work, big enough that the 42-strategy sweeps dominate.
fn farm_spec() -> DatasetSpec {
    DatasetSpec {
        samples: 16,
        requests_per_sample: 400,
        ..DatasetSpec::quick(16)
    }
}

fn main() {
    let iters = env_usize("SSDKEEPER_BENCH_ITERS", 5).max(1);
    let warmup = env_usize("SSDKEEPER_BENCH_WARMUP", 1);
    let strict = std::env::var("SSDKEEPER_BENCH_STRICT").map_or(false, |v| v == "1");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // --- Decisions ------------------------------------------------------
    let allocator = bench::bench_allocator();
    let quantized = allocator.quantized();
    let features = corpus(BATCH);

    // Correctness before timing: all three paths decide identically.
    let rowwise: Vec<_> = features.iter().map(|f| allocator.predict(f)).collect();
    assert_eq!(allocator.predict_batch(&features), rowwise);
    assert_eq!(quantized.predict_batch(&features), rowwise);

    let decisions = (BATCH * PASSES) as u64;
    let row_ns = median_ns(iters, warmup, || {
        for _ in 0..PASSES {
            for f in &features {
                black_box(allocator.predict(f));
            }
        }
    });
    let mut scratch = DecisionScratch::new();
    let mut out = Vec::new();
    let batch_ns = median_ns(iters, warmup, || {
        for _ in 0..PASSES {
            allocator.predict_batch_into(&features, &mut scratch, &mut out);
            black_box(out.len());
        }
    });
    let quant_ns = median_ns(iters, warmup, || {
        for _ in 0..PASSES {
            quantized.predict_batch_into(&features, &mut scratch, &mut out);
            black_box(out.len());
        }
    });

    let dps = |ns: u64| decisions as f64 / (ns as f64 / 1e9).max(1e-12);
    let (dps_row, dps_batch, dps_quant) = (dps(row_ns), dps(batch_ns), dps(quant_ns));
    let speedup = dps_batch / dps_row;
    let quant_speedup = dps_quant / dps_row;
    println!("decision_throughput/batch={BATCH} decisions={decisions} iters={iters}");
    println!("decision_throughput/rowwise   median={row_ns}ns  {dps_row:.0} decisions/s");
    println!(
        "decision_throughput/batched   median={batch_ns}ns  {dps_batch:.0} decisions/s  \
         speedup {speedup:.2}x"
    );
    println!(
        "decision_throughput/quantized median={quant_ns}ns  {dps_quant:.0} decisions/s  \
         speedup {quant_speedup:.2}x"
    );
    if strict {
        assert!(
            BATCH >= 64 && speedup >= 3.0,
            "strict gate: batched decisions must run >= 3x the row-at-a-time \
             baseline at batch >= 64 (got {speedup:.2}x)"
        );
    }

    // --- Labels ---------------------------------------------------------
    let learner = Learner::new(farm_spec());
    let samples = farm_spec().samples as u64;
    let workers = cores.max(4);
    let single = PoolConfig::with_workers(1);
    let multi = PoolConfig::with_workers(workers);
    let reference = learner.generate_dataset_parallel(97, &single);
    let fanned = learner.generate_dataset_parallel(97, &multi);
    for (a, b) in reference.samples.iter().zip(&fanned.samples) {
        assert_eq!(a.label, b.label, "farm fan-out changed a label");
        assert_eq!(a.features, b.features, "farm fan-out changed features");
    }
    let single_ns = median_ns(iters, warmup, || {
        black_box(learner.generate_dataset_parallel(97, &single));
    });
    let multi_ns = median_ns(iters, warmup, || {
        black_box(learner.generate_dataset_parallel(97, &multi));
    });
    let lps = |ns: u64| samples as f64 / (ns as f64 / 1e9).max(1e-12);
    let (lps_1, lps_n) = (lps(single_ns), lps(multi_ns));
    let farm_speedup = lps_n / lps_1;
    // On one core the fan-out only measures oversubscription, so the
    // gated `current` row is the single-worker run and the speedup is
    // informational (`"scaling_meaningful": false` in the JSON entry).
    let scaling_meaningful = cores > 1;
    let (tracked_ns, tracked_lps) = if scaling_meaningful {
        (multi_ns, lps_n)
    } else {
        (single_ns, lps_1)
    };
    println!("label_farm/samples={samples} workers={workers} ({cores} cores) iters={iters}");
    println!("label_farm/1 worker  median={single_ns}ns  {lps_1:.2} labels/s");
    println!(
        "label_farm/{workers} workers median={multi_ns}ns  {lps_n:.2} labels/s  \
         speedup {farm_speedup:.2}x{}",
        if scaling_meaningful {
            ""
        } else {
            "  (informational: 1 core, scaling not meaningful)"
        }
    );

    if let Ok(path) = std::env::var("SSDKEEPER_BENCH_JSON") {
        let existing = std::fs::read_to_string(&path).unwrap_or_default();
        let decide_entry = format!(
            "    \"decision_throughput\": {{\n      \"batch\": {BATCH},\n      \
             \"decisions\": {decisions},\n      \
             \"baseline\": {{ \"median_ns\": {row_ns}, \"decisions_per_sec\": {dps_row:.1} }},\n      \
             \"current\": {{ \"median_ns\": {batch_ns}, \"decisions_per_sec\": {dps_batch:.1} }},\n      \
             \"quantized\": {{ \"median_ns\": {quant_ns}, \"decisions_per_sec\": {dps_quant:.1} }},\n      \
             \"speedup_batched_vs_rowwise\": {speedup:.3},\n      \
             \"speedup_quantized_vs_rowwise\": {quant_speedup:.3}\n    }}"
        );
        let spliced = report::splice_entry(&existing, "decision_throughput", &decide_entry);
        let farm_entry = format!(
            "    \"label_farm\": {{\n      \"samples\": {samples},\n      \
             \"cores\": {cores},\n      \"workers\": {workers},\n      \
             \"scaling_meaningful\": {scaling_meaningful},\n      \
             \"baseline\": {{ \"median_ns\": {single_ns}, \"labels_per_sec\": {lps_1:.3} }},\n      \
             \"current\": {{ \"median_ns\": {tracked_ns}, \"labels_per_sec\": {tracked_lps:.3} }},\n      \
             \"speedup_vs_1_worker\": {farm_speedup:.3}\n    }}"
        );
        std::fs::write(
            &path,
            report::splice_entry(&spliced, "label_farm", &farm_entry),
        )
        .expect("write BENCH json");
        println!("decision_throughput: wrote {path}");
    }
}
