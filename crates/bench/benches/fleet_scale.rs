//! Fleet-scale throughput and core-scaling — the tracked `fleet_1k` gate.
//!
//! Runs the [`fleet::FleetConfig::scenario_1k`] scenario (1000 tenants
//! across 64 device shards under the two-tier keeper) twice: once pinned
//! to a single worker and once across `max(4, available cores)` workers,
//! both measured as median-of-N wall time over the whole `run_fleet`
//! call (stream generation, placement, every shard simulation, the
//! re-placement hook, and the merge). From those two runs it derives
//!
//! * `events_per_sec` — merged discrete events over wall time at the
//!   multi-worker setting (the tracked throughput number),
//! * `speedup_vs_1_worker` — multi-worker over single-worker throughput,
//! * `core_scaling_efficiency` — that speedup divided by the worker
//!   count, honest about the machine: `cores` records what the container
//!   actually had, and on a single hardware thread the speedup is ~1.0
//!   by construction, not a regression.
//!
//! On a single-core container the entry carries
//! `"scaling_meaningful": false`, the speedup rows become informational,
//! and the gated `current` throughput is the single-worker run — a
//! 4-worker pool on one hardware thread measures context switching, and
//! publishing it would read as a regression against a multicore-recorded
//! baseline.
//!
//! Determinism makes the comparison exact: both settings produce
//! byte-identical merged results (the bench asserts digest equality), so
//! the timing difference is pure scheduling, never different work.
//!
//! When `SSDKEEPER_BENCH_JSON` names a report, a `fleet_1k` entry is
//! spliced into its `workloads` object without disturbing the other
//! entries. The `baseline` is the first run ever recorded; because the
//! `sim_throughput` bench rewrites the whole file with only its own
//! workloads, the splice looks for the prior `fleet_1k` baseline in
//! `SSDKEEPER_BENCH_PREV` (the pre-run snapshot `scripts/bench.sh`
//! takes) before falling back to the report itself.
//!
//! Env knobs: `SSDKEEPER_BENCH_ITERS` (default 3 here — a full fleet run
//! is the unit of work), `SSDKEEPER_BENCH_WARMUP` (default 1),
//! `SSDKEEPER_BENCH_JSON`, `SSDKEEPER_BENCH_PREV`.

use bench::harness::black_box;
use bench::report;
use fleet::{run_fleet, FleetConfig, FleetOutcome};
use parallel::PoolConfig;
use std::time::{Duration, Instant};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

struct Sample {
    outcome: FleetOutcome,
    elapsed: Duration,
}

/// Median-of-N wall time for the scenario at a fixed worker count.
fn measure(cfg: &FleetConfig, iters: usize, warmup: usize) -> Sample {
    for _ in 0..warmup {
        black_box(run_fleet(cfg).expect("fleet bench scenario runs"));
    }
    let mut samples: Vec<Sample> = (0..iters)
        .map(|_| {
            let start = Instant::now();
            let outcome = run_fleet(cfg).expect("fleet bench scenario runs");
            Sample {
                elapsed: start.elapsed(),
                outcome,
            }
        })
        .collect();
    samples.sort_by_key(|s| s.elapsed);
    samples.swap_remove((samples.len() - 1) / 2)
}

fn main() {
    let iters = env_usize("SSDKEEPER_BENCH_ITERS", 3).max(1);
    let warmup = env_usize("SSDKEEPER_BENCH_WARMUP", 1);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let workers = cores.max(4);
    let cfg = FleetConfig::scenario_1k(42);

    let single = measure(
        &FleetConfig {
            pool: PoolConfig::with_workers(1),
            ..cfg.clone()
        },
        iters,
        warmup,
    );
    let multi = measure(
        &FleetConfig {
            pool: PoolConfig::with_workers(workers),
            ..cfg.clone()
        },
        iters,
        warmup,
    );
    assert_eq!(
        single.outcome.summary.digest(),
        multi.outcome.summary.digest(),
        "worker count must not change the merged result"
    );

    let events = multi.outcome.summary.total_events();
    let eps = |s: &Sample| events as f64 / s.elapsed.as_secs_f64().max(1e-9);
    let eps_1 = eps(&single);
    let eps_n = eps(&multi);
    let speedup = eps_n / eps_1;
    let efficiency = speedup / workers as f64;
    let scaling_meaningful = scaling_is_meaningful(cores);
    println!(
        "fleet_scale/fleet_1k tenants={} devices={} events={events} iters={iters}",
        cfg.tenants, cfg.devices
    );
    println!(
        "fleet_scale/fleet_1k 1 worker: median={:?}  {:.0} events/s",
        single.elapsed, eps_1
    );
    println!(
        "fleet_scale/fleet_1k {workers} workers ({cores} cores): median={:?}  {:.0} events/s  \
         speedup {speedup:.2}x  efficiency {:.0}%{}",
        multi.elapsed,
        eps_n,
        efficiency * 100.0,
        if scaling_meaningful {
            ""
        } else {
            "  (informational: 1 core, scaling not meaningful)"
        }
    );
    println!(
        "fleet_scale/fleet_1k digest 0x{:016x}",
        multi.outcome.summary.digest()
    );

    if let Ok(path) = std::env::var("SSDKEEPER_BENCH_JSON") {
        write_entry(
            &path, &cfg, cores, workers, events, &single, &multi, eps_1, eps_n,
        );
    }
}

/// Whether multi-worker timings on this machine say anything about
/// scaling (false on a single hardware thread, where the pool only adds
/// context-switch overhead).
fn scaling_is_meaningful(cores: usize) -> bool {
    cores > 1
}

/// The stored `fleet_1k` baseline from a report text, if present.
fn stored_baseline(text: &str, workload: &str) -> Option<(u64, u64, f64)> {
    match (
        report::baseline_number(text, workload, "events"),
        report::baseline_number(text, workload, "median_ns"),
        report::baseline_number(text, workload, "events_per_sec"),
    ) {
        (Some(e), Some(m), Some(eps)) => Some((e as u64, m as u64, eps)),
        _ => None,
    }
}

#[allow(clippy::too_many_arguments)]
fn write_entry(
    path: &str,
    cfg: &FleetConfig,
    cores: usize,
    workers: usize,
    events: u64,
    single: &Sample,
    multi: &Sample,
    eps_1: f64,
    eps_n: f64,
) {
    // On one core the gated `current` row is the single-worker run: the
    // multi-worker timing only measures oversubscription there, and
    // publishing it would read as a throughput regression against a
    // multicore-recorded baseline. The speedup stays in the row either
    // way, marked informational by `scaling_meaningful`.
    let scaling_meaningful = scaling_is_meaningful(cores);
    let tracked = if scaling_meaningful { multi } else { single };
    let tracked_eps = if scaling_meaningful { eps_n } else { eps_1 };
    let median_ns = tracked.elapsed.as_nanos() as u64;
    let single_ns = single.elapsed.as_nanos() as u64;
    // Baseline: prefer the pre-bench snapshot (sim_throughput rewrites
    // the live report without fleet_1k), then the live report, then the
    // fresh numbers (first run ever).
    let prev = std::env::var("SSDKEEPER_BENCH_PREV")
        .ok()
        .and_then(|p| std::fs::read_to_string(p).ok())
        .unwrap_or_default();
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    let (base_events, base_median, base_eps) = stored_baseline(&prev, "fleet_1k")
        .or_else(|| stored_baseline(&existing, "fleet_1k"))
        .unwrap_or((events, median_ns, tracked_eps));
    let speedup_vs_base = tracked_eps / base_eps;
    let speedup = eps_n / eps_1;
    let entry = format!(
        "    \"fleet_1k\": {{\n      \"tenants\": {},\n      \"devices\": {},\n      \
         \"requests_per_tenant\": {},\n      \"cores\": {cores},\n      \"workers\": {workers},\n      \
         \"scaling_meaningful\": {scaling_meaningful},\n      \
         \"baseline\": {{ \"events\": {base_events}, \"median_ns\": {base_median}, \
         \"events_per_sec\": {base_eps:.1} }},\n      \
         \"current\": {{ \"events\": {events}, \"median_ns\": {median_ns}, \
         \"events_per_sec\": {tracked_eps:.1} }},\n      \
         \"single_worker\": {{ \"median_ns\": {single_ns}, \"events_per_sec\": {eps_1:.1} }},\n      \
         \"speedup_vs_1_worker\": {speedup:.3},\n      \
         \"core_scaling_efficiency\": {:.3},\n      \
         \"speedup_vs_baseline\": {speedup_vs_base:.3}\n    }}",
        cfg.tenants,
        cfg.devices,
        cfg.requests_per_tenant,
        speedup / workers as f64,
    );
    std::fs::write(path, report::splice_entry(&existing, "fleet_1k", &entry))
        .expect("write BENCH json");
    println!("fleet_scale: fleet_1k speedup vs baseline: {speedup_vs_base:.3}x");
    println!("fleet_scale: wrote {path}");
}
