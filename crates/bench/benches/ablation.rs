//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **plane-level parallelism** on/off — SSDSim's multilevel parallelism
//!   vs die-serial execution;
//! * **scheduling policy** — FIFO (paper-faithful) vs read-priority;
//! * **bus bandwidth** — the calibration knob that decides whether the
//!   channel bus or the flash array binds;
//! * **GC threshold** — spare-pool size vs write-path interference.
//!
//! Each bench reports wall time of the simulation; the *simulated* latency
//! effect of each knob is printed by the accompanying example
//! (`examples/ablation_study.rs`).

use bench::harness::Group;
use bench::{bench_ssd, four_tenant_mix};
use flash_sim::scheduler::SchedPolicy;
use flash_sim::{Simulator, SsdConfig, TenantLayout};

fn run_once(cfg: SsdConfig, trace: &[flash_sim::IoRequest]) -> flash_sim::SimReport {
    let layout = TenantLayout::shared(4, &cfg).with_lpn_space_all(1 << 10);
    Simulator::new(cfg, layout).unwrap().run(trace).unwrap()
}

fn plane_parallelism() {
    let trace = four_tenant_mix(3_000, 70_000.0);
    let mut group = Group::new("ablation_plane_parallelism");
    group.sample_size(10);
    for enabled in [true, false] {
        group.bench(&format!("{enabled}"), || {
            run_once(
                SsdConfig {
                    plane_parallelism: enabled,
                    ..bench_ssd()
                },
                &trace,
            )
        });
    }
    group.finish();
}

fn sched_policy() {
    let trace = four_tenant_mix(3_000, 70_000.0);
    let mut group = Group::new("ablation_sched_policy");
    group.sample_size(10);
    let policies = [
        ("fifo", SchedPolicy::Fifo),
        ("read_priority", SchedPolicy::ReadPriority { max_bypass: 8 }),
    ];
    for (name, policy) in policies {
        group.bench(name, || {
            run_once(
                SsdConfig {
                    sched_policy: policy,
                    ..bench_ssd()
                },
                &trace,
            )
        });
    }
    group.finish();
}

fn bus_bandwidth() {
    let trace = four_tenant_mix(2_000, 50_000.0);
    let mut group = Group::new("ablation_bus_bandwidth");
    group.sample_size(10);
    for mb_s in [100u64, 200, 800] {
        group.bench(&format!("{mb_s}"), || {
            run_once(
                SsdConfig {
                    bus_mb_per_s: mb_s,
                    ..bench_ssd()
                },
                &trace,
            )
        });
    }
    group.finish();
}

fn gc_threshold() {
    // Overwrite-heavy single-tenant trace that actually triggers GC.
    let trace: Vec<flash_sim::IoRequest> = (0..8_000u64)
        .map(|i| {
            flash_sim::IoRequest::new(i, 0, flash_sim::Op::Write, (i * 7) % 256, 1, i * 11_000)
        })
        .collect();
    let mut group = Group::new("ablation_gc_threshold");
    group.sample_size(10);
    for threshold in [0.05f64, 0.25, 0.45] {
        group.bench(&format!("{threshold}"), || {
            let cfg = SsdConfig {
                channels: 1,
                chips_per_channel: 1,
                blocks_per_plane: 16,
                pages_per_block: 16,
                gc_free_block_threshold: threshold,
                ..bench_ssd()
            };
            let layout = TenantLayout::shared(1, &cfg).with_lpn_space_all(256);
            Simulator::new(cfg, layout).unwrap().run(&trace).unwrap()
        });
    }
    group.finish();
}

fn main() {
    plane_parallelism();
    sched_policy();
    bus_bandwidth();
    gc_threshold();
}
