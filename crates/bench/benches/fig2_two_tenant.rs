//! Figure 2 bench: simulate the two-tenant writer/reader mix under each
//! of the 8 two-tenant strategies at representative write proportions.
//!
//! The timing numbers measure simulator throughput per strategy; the
//! latency *results* the paper plots come from `exp --bin fig2`.

use bench::harness::Group;
use bench::{bench_ssd, two_tenant_mix};
use parallel::PoolConfig;
use ssdkeeper::label::{run_under_strategy, EvalConfig};
use ssdkeeper::Strategy;

fn fig2_strategies() {
    let eval = EvalConfig {
        ssd: bench_ssd(),
        hybrid: false,
        pool: PoolConfig::with_workers(1),
    };
    let mut group = Group::new("fig2");
    group.sample_size(10);
    for &write_pct in &[30u32, 70] {
        let trace = two_tenant_mix(write_pct, 3_000, 70_000.0);
        for strategy in [
            Strategy::Shared,
            Strategy::Isolated,
            Strategy::TwoPart { write_channels: 2 },
            Strategy::TwoPart { write_channels: 6 },
        ] {
            group.bench(&format!("wp{write_pct}/{strategy}"), || {
                run_under_strategy(&trace, strategy, &[0, 1], &[1 << 10, 1 << 10], &eval)
                    .expect("bench workload fits the device")
            });
        }
    }
    group.finish();
}

fn main() {
    fig2_strategies();
}
