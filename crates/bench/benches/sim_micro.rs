//! Simulator micro-benchmarks: event-processing throughput, allocation
//! policies, FTL write path, and trace codec.

use bench::bench_ssd;
use bench::harness::Group;
use flash_sim::ftl::Ftl;
use flash_sim::trace::{decode_trace, encode_trace};
use flash_sim::{IoRequest, Op, PageAllocPolicy, Simulator, TenantLayout};

fn sequential_write_trace(n: u64) -> Vec<IoRequest> {
    (0..n)
        .map(|i| IoRequest::new(i, 0, Op::Write, i % 1024, 1, i * 12_000))
        .collect()
}

fn mixed_trace(n: u64) -> Vec<IoRequest> {
    (0..n)
        .map(|i| {
            let op = if i % 4 == 0 { Op::Write } else { Op::Read };
            IoRequest::new(
                i,
                (i % 2) as u16,
                op,
                (i * 13) % 1024,
                1 + (i % 3) as u32,
                i * 9_000,
            )
        })
        .collect()
}

fn engine_throughput() {
    let mut group = Group::new("engine");
    for &n in &[2_000u64, 10_000] {
        let trace = mixed_trace(n);
        group.throughput(n);
        group.bench(&format!("mixed_requests/{n}"), || {
            let cfg = bench_ssd();
            let layout = TenantLayout::shared(2, &cfg).with_lpn_space_all(1 << 10);
            Simulator::new(cfg, layout).unwrap().run(&trace).unwrap()
        });
    }
    group.finish();
}

fn allocation_policies() {
    let mut group = Group::new("page_allocation");
    group.sample_size(20);
    for policy in [PageAllocPolicy::Static, PageAllocPolicy::Dynamic] {
        let trace = sequential_write_trace(5_000);
        group.bench(&format!("{policy}"), || {
            let cfg = bench_ssd();
            let layout = TenantLayout::shared(1, &cfg)
                .with_lpn_space_all(1 << 10)
                .with_policy(0, policy);
            Simulator::new(cfg, layout).unwrap().run(&trace).unwrap()
        });
    }
    group.finish();
}

fn ftl_write_path() {
    let mut group = Group::new("ftl");
    group.throughput(10_000);
    let cfg = bench_ssd();
    let layout = TenantLayout::shared(1, &cfg).with_lpn_space_all(1 << 10);
    group.bench("page_writes_with_gc", || {
        let mut ftl = Ftl::new(&cfg, &layout);
        for i in 0..10_000u64 {
            ftl.write(0, i % 1024, (i % 64) as usize).unwrap();
        }
        ftl.stats()
    });
    group.finish();
}

fn trace_codec() {
    let trace = mixed_trace(10_000);
    let encoded = encode_trace(&trace);
    let mut group = Group::new("trace_codec");
    group.throughput(10_000);
    group.bench("encode", || encode_trace(&trace));
    group.bench("decode", || decode_trace(&encoded).unwrap());
    group.finish();
}

fn main() {
    engine_throughput();
    allocation_policies();
    ftl_write_path();
    trace_codec();
}
