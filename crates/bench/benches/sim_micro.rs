//! Simulator micro-benchmarks: event-processing throughput, allocation
//! policies, FTL write path, and trace codec.

use bench::bench_ssd;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use flash_sim::ftl::Ftl;
use flash_sim::trace::{decode_trace, encode_trace};
use flash_sim::{IoRequest, Op, PageAllocPolicy, Simulator, TenantLayout};

fn sequential_write_trace(n: u64) -> Vec<IoRequest> {
    (0..n)
        .map(|i| IoRequest::new(i, 0, Op::Write, i % 1024, 1, i * 12_000))
        .collect()
}

fn mixed_trace(n: u64) -> Vec<IoRequest> {
    (0..n)
        .map(|i| {
            let op = if i % 4 == 0 { Op::Write } else { Op::Read };
            IoRequest::new(i, (i % 2) as u16, op, (i * 13) % 1024, 1 + (i % 3) as u32, i * 9_000)
        })
        .collect()
}

fn engine_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    for &n in &[2_000u64, 10_000] {
        let trace = mixed_trace(n);
        group.throughput(Throughput::Elements(n));
        group.bench_with_input(BenchmarkId::new("mixed_requests", n), &trace, |b, trace| {
            b.iter(|| {
                let cfg = bench_ssd();
                let layout = TenantLayout::shared(2, &cfg).with_lpn_space_all(1 << 10);
                Simulator::new(cfg, layout).unwrap().run(trace).unwrap()
            })
        });
    }
    group.finish();
}

fn allocation_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("page_allocation");
    group.sample_size(20);
    for policy in [PageAllocPolicy::Static, PageAllocPolicy::Dynamic] {
        let trace = sequential_write_trace(5_000);
        group.bench_with_input(BenchmarkId::from_parameter(policy), &trace, |b, trace| {
            b.iter(|| {
                let cfg = bench_ssd();
                let layout = TenantLayout::shared(1, &cfg)
                    .with_lpn_space_all(1 << 10)
                    .with_policy(0, policy);
                Simulator::new(cfg, layout).unwrap().run(trace).unwrap()
            })
        });
    }
    group.finish();
}

fn ftl_write_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("ftl");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("page_writes_with_gc", |b| {
        let cfg = bench_ssd();
        let layout = TenantLayout::shared(1, &cfg).with_lpn_space_all(1 << 10);
        b.iter(|| {
            let mut ftl = Ftl::new(&cfg, &layout);
            for i in 0..10_000u64 {
                ftl.write(0, i % 1024, (i % 64) as usize).unwrap();
            }
            ftl.stats()
        })
    });
    group.finish();
}

fn trace_codec(c: &mut Criterion) {
    let trace = mixed_trace(10_000);
    let encoded = encode_trace(&trace);
    let mut group = c.benchmark_group("trace_codec");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("encode", |b| b.iter(|| encode_trace(&trace)));
    group.bench_function("decode", |b| b.iter(|| decode_trace(encoded.clone()).unwrap()));
    group.finish();
}

criterion_group!(benches, engine_throughput, allocation_policies, ftl_write_path, trace_codec);
criterion_main!(benches);
