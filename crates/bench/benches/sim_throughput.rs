//! Simulator throughput in events per second — the tracked perf gate.
//!
//! Three workloads exercise the event core from different directions:
//!
//! * `sim_micro` — the original gate: a preconditioned device in GC
//!   steady state (the regime every real SSD spends its life in), a 3:1
//!   write:read mix over a hot region so the garbage collector runs
//!   continuously while reads keep the full command pipeline busy.
//! * `gc_heavy` — an overwrite storm on a narrow hot region of a
//!   2-channel device: almost every write triggers victim selection and
//!   page movement, so the run is dominated by GC commands and die-queue
//!   churn (the worst case for the event queue's completion traffic).
//! * `read_mostly_8ch` — a 7:1 read:write mix striped over all eight of
//!   the paper's channels: shallow per-die queues, high channel
//!   parallelism, and short service times make this the regime with the
//!   highest event rate per unit of simulated time.
//!
//! Device construction and preconditioning happen outside the timed
//! region; the measurement covers exactly `Simulator::run`, i.e. the
//! discrete-event hot path the ROADMAP says must run "as fast as the
//! hardware allows". Events/sec uses `SimReport::events_processed`
//! (deterministic for a given trace) over the **median** wall time of the
//! measured iterations, so the metric is robust to scheduling noise.
//!
//! When `SSDKEEPER_BENCH_JSON` names a file, the results are written
//! there in the `BENCH_sim.json` format: one entry per workload, each
//! with a `baseline` (the first run ever recorded for that workload —
//! kept verbatim on later runs so the speedup is always measured against
//! the committed starting point), a `current` section, and a `phases`
//! section with per-command nanoseconds in each simulated phase from the
//! median run's [`flash_sim::PhaseReport`] — mean plus p50/p99 from the
//! log₂ histograms, which `ssdtrace diff` compares across commits.
//!
//! The host queue is bounded (`host_queue_depth: 64`) on every workload:
//! with an unbounded queue the whole trace is admitted at once and the
//! per-phase numbers measure the standing backlog instead of device
//! behavior (see the PR 4 note in DESIGN.md).
//!
//! `SSDKEEPER_BENCH_PROBE=1` additionally measures `sim_micro` with a
//! bounded [`flash_sim::EventRecorder`] attached and prints the probe
//! overhead relative to the `NullProbe` run — the number the probe
//! layer's ≤2 % discipline is checked against.

use bench::harness::black_box;
use flash_sim::{
    EventRecorder, IoRequest, Op, PhaseReport, SimArena, SimBuilder, SsdConfig, TenantLayout,
};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One benchmark workload: a device configuration plus a trace.
struct Workload {
    name: &'static str,
    geometry: &'static str,
    cfg: SsdConfig,
    lpn_space: u64,
    trace: Vec<IoRequest>,
}

/// The original tracked gate: Table I timings on tall planes (few
/// planes, many blocks each, so per-plane GC work dominates the way it
/// does at production block counts), 3:1 write:read over a 4 Ki hot
/// region, 2 µs apart.
fn sim_micro() -> Workload {
    const REQUESTS: u64 = 24_000;
    const HOT_LPNS: u64 = 4_096;
    let cfg = SsdConfig {
        channels: 4,
        chips_per_channel: 1,
        dies_per_chip: 1,
        planes_per_die: 1,
        blocks_per_plane: 2_048,
        pages_per_block: 16,
        gc_free_block_threshold: 0.6,
        wear_leveling_threshold: 64,
        host_queue_depth: 64,
        ..SsdConfig::paper_table1()
    };
    let trace = (0..REQUESTS)
        .map(|i| {
            let op = if i % 4 == 3 { Op::Read } else { Op::Write };
            let lpn = (i * 131) % HOT_LPNS;
            IoRequest::new(i, 0, op, lpn, 1, i * 2_000)
        })
        .collect();
    Workload {
        name: "sim_micro",
        geometry: "4ch x 1chip x 1die x 1plane, 2048 blocks x 16 pages, qd 64",
        cfg,
        lpn_space: 54_400,
        trace,
    }
}

/// GC storm: a 2-channel device with the same tall planes, 7:1
/// write:read hammering a 1 Ki hot region. Nearly every host write lands
/// on already-written LPNs, so victim selection, page movement, and the
/// composite GC die charges dominate the event stream.
fn gc_heavy() -> Workload {
    const REQUESTS: u64 = 16_000;
    const HOT_LPNS: u64 = 1_024;
    let cfg = SsdConfig {
        channels: 2,
        chips_per_channel: 1,
        dies_per_chip: 1,
        planes_per_die: 1,
        blocks_per_plane: 2_048,
        pages_per_block: 16,
        gc_free_block_threshold: 0.6,
        wear_leveling_threshold: 64,
        host_queue_depth: 64,
        ..SsdConfig::paper_table1()
    };
    let trace = (0..REQUESTS)
        .map(|i| {
            let op = if i % 8 == 7 { Op::Read } else { Op::Write };
            let lpn = (i * 131) % HOT_LPNS;
            IoRequest::new(i, 0, op, lpn, 1, i * 2_000)
        })
        .collect();
    Workload {
        name: "gc_heavy",
        geometry: "2ch x 1chip x 1die x 1plane, 2048 blocks x 16 pages, qd 64",
        cfg,
        lpn_space: 27_200,
        trace,
    }
}

/// The paper's full 8-channel fan-out under a 7:1 read:write mix striding
/// the whole logical space: short array reads and wide channel
/// parallelism produce the highest event rate per simulated second, with
/// just enough writes to keep the program/GC paths warm.
fn read_mostly_8ch() -> Workload {
    const REQUESTS: u64 = 24_000;
    const SPAN: u64 = 32_768;
    let cfg = SsdConfig {
        channels: 8,
        chips_per_channel: 1,
        dies_per_chip: 1,
        planes_per_die: 1,
        blocks_per_plane: 512,
        pages_per_block: 16,
        gc_free_block_threshold: 0.3,
        wear_leveling_threshold: 64,
        host_queue_depth: 64,
        ..SsdConfig::paper_table1()
    };
    let trace = (0..REQUESTS)
        .map(|i| {
            let op = if i % 8 == 7 { Op::Write } else { Op::Read };
            let lpn = (i * 131) % SPAN;
            IoRequest::new(i, 0, op, lpn, 1, i * 1_000)
        })
        .collect();
    Workload {
        name: "read_mostly_8ch",
        geometry: "8ch x 1chip x 1die x 1plane, 512 blocks x 16 pages, qd 64",
        cfg,
        lpn_space: SPAN,
        trace,
    }
}

/// The repeated-run scenario [`SimArena`] exists for: the label farm and
/// keeper re-simulation run many short traces back to back, so device
/// construction (FTL tables, queues, schedulers) is a large share of
/// each cycle. Same geometry as `sim_micro`, a short trace, no
/// preconditioning — the regime where cold-start allocation dominates.
fn warm_rerun_workload() -> Workload {
    const REQUESTS: u64 = 1_000;
    const HOT_LPNS: u64 = 4_096;
    let cfg = SsdConfig {
        channels: 4,
        chips_per_channel: 1,
        dies_per_chip: 1,
        planes_per_die: 1,
        blocks_per_plane: 2_048,
        pages_per_block: 16,
        gc_free_block_threshold: 0.6,
        wear_leveling_threshold: 64,
        host_queue_depth: 64,
        ..SsdConfig::paper_table1()
    };
    let trace = (0..REQUESTS)
        .map(|i| {
            let op = if i % 4 == 3 { Op::Read } else { Op::Write };
            let lpn = (i * 131) % HOT_LPNS;
            IoRequest::new(i, 0, op, lpn, 1, i * 2_000)
        })
        .collect();
    Workload {
        name: "warm_rerun",
        geometry: "4ch x 1chip x 1die x 1plane, 2048 blocks x 16 pages, qd 64",
        cfg,
        lpn_space: 54_400,
        trace,
    }
}

struct RunSample {
    events: u64,
    elapsed: Duration,
    events_per_sec: f64,
    phases: PhaseReport,
}

fn run_once(w: &Workload) -> RunSample {
    let layout = TenantLayout::shared(1, &w.cfg).with_lpn_space_all(w.lpn_space);
    let sim = SimBuilder::new(w.cfg.clone(), layout)
        .precondition(&[1.0])
        .build()
        .expect("bench config is valid");
    let start = Instant::now();
    let report = sim.run(&w.trace).expect("bench trace runs clean");
    let elapsed = start.elapsed();
    black_box(&report);
    RunSample {
        events: report.events_processed,
        elapsed,
        events_per_sec: report.events_per_sec(elapsed),
        phases: report.phases,
    }
}

/// The same workload with a bounded recorder attached — the probed path
/// whose overhead the ≤2 % discipline bounds.
fn run_once_recorded(w: &Workload) -> RunSample {
    let layout = TenantLayout::shared(1, &w.cfg).with_lpn_space_all(w.lpn_space);
    let mut rec = EventRecorder::with_capacity(1 << 16);
    let sim = SimBuilder::new(w.cfg.clone(), layout)
        .precondition(&[1.0])
        .probe(&mut rec)
        .build()
        .expect("bench config is valid");
    let start = Instant::now();
    let report = sim.run(&w.trace).expect("bench trace runs clean");
    let elapsed = start.elapsed();
    black_box(&report);
    black_box(rec.len());
    RunSample {
        events: report.events_processed,
        elapsed,
        events_per_sec: report.events_per_sec(elapsed),
        phases: report.phases,
    }
}

fn median(sorted: &[RunSample]) -> &RunSample {
    &sorted[(sorted.len() - 1) / 2]
}

/// Median-of-N measurement for one workload.
fn measure(w: &Workload, iters: usize, warmup: usize) -> RunSample {
    for _ in 0..warmup {
        black_box(run_once(w));
    }
    let mut samples: Vec<RunSample> = (0..iters).map(|_| run_once(w)).collect();
    samples.sort_unstable_by_key(|s| s.elapsed);
    let med = median(&samples);
    println!(
        "sim_throughput/{:<16} iters={iters} events={} min={:?} median={:?} max={:?}  {:.0} events/s",
        w.name,
        med.events,
        samples[0].elapsed,
        med.elapsed,
        samples[samples.len() - 1].elapsed,
        med.events_per_sec,
    );
    RunSample {
        events: med.events,
        elapsed: med.elapsed,
        events_per_sec: med.events_per_sec,
        phases: med.phases.clone(),
    }
}

/// Cold vs warm rebuild+run medians and the warm-over-cold speedup.
struct RerunResult {
    cold: Duration,
    warm: Duration,
    speedup: f64,
}

/// Times full build+run cycles: cold constructs every buffer from
/// scratch each iteration; warm draws them from one [`SimArena`] that
/// each cycle returns its buffers to (the `run_reclaim` +
/// `recycle_report` loop the label farm and keeper run). The timed
/// region is identical apart from the arena.
fn measure_warm_rerun(w: &Workload, iters: usize, warmup: usize) -> RerunResult {
    let layout = TenantLayout::shared(1, &w.cfg).with_lpn_space_all(w.lpn_space);

    let cold_once = || {
        let start = Instant::now();
        let sim = SimBuilder::new(w.cfg.clone(), layout.clone())
            .build()
            .expect("bench config is valid");
        let report = sim.run(&w.trace).expect("bench trace runs clean");
        let elapsed = start.elapsed();
        black_box(&report);
        elapsed
    };
    let warm_once = |arena: &mut SimArena| {
        let start = Instant::now();
        let sim = SimBuilder::new(w.cfg.clone(), layout.clone())
            .build_with_arena(arena)
            .expect("bench config is valid");
        let report = sim
            .run_reclaim(&w.trace, arena)
            .expect("bench trace runs clean");
        black_box(&report);
        arena.recycle_report(report);
        start.elapsed()
    };

    for _ in 0..warmup {
        black_box(cold_once());
    }
    let mut colds: Vec<Duration> = (0..iters).map(|_| cold_once()).collect();
    colds.sort_unstable();

    let mut arena = SimArena::new();
    // Prime the arena (plus the usual warmup) so every measured warm
    // cycle is a true rerun.
    for _ in 0..warmup.max(1) {
        black_box(warm_once(&mut arena));
    }
    let mut warms: Vec<Duration> = (0..iters).map(|_| warm_once(&mut arena)).collect();
    warms.sort_unstable();

    let cold = colds[(colds.len() - 1) / 2];
    let warm = warms[(warms.len() - 1) / 2];
    let speedup = cold.as_secs_f64() / warm.as_secs_f64();
    println!(
        "sim_throughput/{:<16} iters={iters} cold_median={cold:?} warm_median={warm:?}  \
         warm speedup {speedup:.2}x",
        w.name,
    );
    RerunResult {
        cold,
        warm,
        speedup,
    }
}

fn main() {
    if obs::ENABLED {
        eprintln!(
            "sim_throughput: WARNING: host tracing is compiled in (obs/enabled); \
             throughput numbers are not comparable to the tracked baseline"
        );
    }
    let iters = env_usize("SSDKEEPER_BENCH_ITERS", 10).max(1);
    let warmup = env_usize("SSDKEEPER_BENCH_WARMUP", 2);
    let workloads = [sim_micro(), gc_heavy(), read_mostly_8ch()];

    let results: Vec<RunSample> = workloads
        .iter()
        .map(|w| measure(w, iters, warmup))
        .collect();

    let rerun_workload = warm_rerun_workload();
    let rerun = measure_warm_rerun(&rerun_workload, iters, warmup);
    if std::env::var("SSDKEEPER_BENCH_STRICT").map_or(false, |v| v != "0") {
        assert!(
            rerun.speedup >= 1.3,
            "sim_throughput: FAIL - warm arena rerun only {:.2}x faster than cold \
             (strict floor is 1.3x)",
            rerun.speedup,
        );
        println!(
            "sim_throughput: warm rerun {:.2}x >= 1.3x strict floor",
            rerun.speedup
        );
    }

    if std::env::var("SSDKEEPER_BENCH_PROBE").map_or(false, |v| v == "1") {
        let w = &workloads[0];
        for _ in 0..warmup {
            black_box(run_once_recorded(w));
        }
        let mut probed: Vec<RunSample> = (0..iters).map(|_| run_once_recorded(w)).collect();
        probed.sort_unstable_by_key(|s| s.elapsed);
        let pmed = median(&probed);
        let overhead = pmed.elapsed.as_secs_f64() / results[0].elapsed.as_secs_f64() - 1.0;
        println!(
            "sim_throughput/{}+recorder  median={:?}  {:.0} events/s  \
             probe overhead {:+.2}% vs NullProbe",
            w.name,
            pmed.elapsed,
            pmed.events_per_sec,
            overhead * 100.0,
        );
    }

    if let Ok(path) = std::env::var("SSDKEEPER_BENCH_JSON") {
        write_json(&path, &workloads, &results, &rerun_workload, &rerun);
    }
}

/// Reads `"key": <number>` out of `section`'s object in our own JSON,
/// scanning forward from the first occurrence of the section name.
fn json_number(text: &str, section: &str, key: &str) -> Option<f64> {
    let sec = text.find(&format!("\"{section}\""))?;
    let rest = &text[sec..];
    let k = rest.find(&format!("\"{key}\""))?;
    let after = &rest[k..];
    let colon = after.find(':')?;
    let tail = after[colon + 1..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

/// Baseline for one workload from the existing report, scoped to that
/// workload's JSON block (each workload's `baseline` is the first object
/// following its name, which the fixed field order guarantees).
fn stored_baseline(existing: &str, workload: &str) -> Option<(u64, u64, f64)> {
    let start = existing.find(&format!("\"{workload}\""))?;
    let scoped = &existing[start..];
    match (
        json_number(scoped, "baseline", "events"),
        json_number(scoped, "baseline", "median_ns"),
        json_number(scoped, "baseline", "events_per_sec"),
    ) {
        (Some(e), Some(m), Some(eps)) => Some((e as u64, m as u64, eps)),
        _ => None,
    }
}

fn write_json(
    path: &str,
    workloads: &[Workload],
    results: &[RunSample],
    rerun_workload: &Workload,
    rerun: &RerunResult,
) {
    // Keep each workload's recorded baseline when the file already has
    // one, so speedups are always measured against the first committed
    // run of that workload on this format.
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    let phase = |h: &flash_sim::PhaseHist| {
        format!(
            "{{ \"mean_ns\": {:.1}, \"p50_ns\": {}, \"p99_ns\": {} }}",
            h.mean(),
            h.percentile(0.50),
            h.percentile(0.99),
        )
    };
    let mut body = String::from("{\n  \"bench\": \"sim_throughput\",\n  \"workloads\": {\n");
    for (w, r) in workloads.iter().zip(results) {
        let events = r.events;
        let median_ns = r.elapsed.as_nanos() as u64;
        let eps = r.events_per_sec;
        let (base_events, base_median, base_eps) =
            stored_baseline(&existing, w.name).unwrap_or((events, median_ns, eps));
        let speedup = eps / base_eps;
        let p = &r.phases;
        // Field order is load-bearing: `baseline` precedes `current` so
        // stored_baseline's forward scan stays inside this workload.
        let _ = write!(
            body,
            "    \"{}\": {{\n      \"requests\": {},\n      \"geometry\": \"{}\",\n      \
             \"baseline\": {{ \"events\": {base_events}, \"median_ns\": {base_median}, \
             \"events_per_sec\": {base_eps:.1} }},\n      \
             \"current\": {{ \"events\": {events}, \"median_ns\": {median_ns}, \
             \"events_per_sec\": {eps:.1} }},\n      \
             \"phases\": {{\n        \"wait_unit\": {},\n        \"array\": {},\n        \
             \"wait_bus\": {},\n        \"transfer\": {},\n        \"gc_exec\": {},\n        \
             \"queue_depth\": {{ \"mean\": {:.2}, \"p50\": {}, \"p99\": {} }}\n      }},\n      \
             \"speedup_vs_baseline\": {speedup:.3}\n    }}{}\n",
            w.name,
            w.trace.len(),
            w.geometry,
            phase(&p.wait_unit),
            phase(&p.array),
            phase(&p.wait_bus),
            phase(&p.transfer),
            phase(&p.gc_exec),
            p.queue_depth.mean(),
            p.queue_depth.percentile(0.50),
            p.queue_depth.percentile(0.99),
            // The warm_rerun entry always follows, so every workload
            // entry takes a joining comma.
            ",",
        );
        println!(
            "sim_throughput: {} speedup vs baseline: {speedup:.3}x",
            w.name
        );
    }
    // Arena-reuse row: cold vs warm rebuild+run medians. The `_ns`
    // fields carry no mean/median/p50 tag on purpose — wall-clock noise
    // on this short cycle would make a relative ssdtrace gate flaky, so
    // the 1.3x floor is enforced in-process under strict mode instead.
    let _ = write!(
        body,
        "    \"{}\": {{\n      \"requests\": {},\n      \"geometry\": \"{}\",\n      \
         \"cold_ns\": {},\n      \"warm_ns\": {},\n      \
         \"speedup_warm_vs_cold\": {:.3}\n    }}\n",
        rerun_workload.name,
        rerun_workload.trace.len(),
        rerun_workload.geometry,
        rerun.cold.as_nanos(),
        rerun.warm.as_nanos(),
        rerun.speedup,
    );
    body.push_str("  }\n}\n");
    std::fs::write(path, body).expect("write BENCH json");
    println!("sim_throughput: wrote {path}");
}
