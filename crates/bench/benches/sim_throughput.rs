//! Simulator throughput in events per second.
//!
//! The `sim_micro` workload is the repo's tracked perf gate: a
//! preconditioned device in GC steady state — the regime every real SSD
//! spends its life in — driven by hot overwrites so the garbage collector
//! runs continuously while reads keep the full command pipeline busy.
//! Device construction and preconditioning happen outside the timed
//! region; the measurement covers exactly `Simulator::run`, i.e. the
//! discrete-event hot path the ROADMAP says must run "as fast as the
//! hardware allows".
//!
//! Events/sec uses `SimReport::events_processed` (deterministic for a
//! given trace) over the **median** wall time of the measured iterations,
//! so the metric is robust to scheduling noise.
//!
//! When `SSDKEEPER_BENCH_JSON` names a file, the result is written there
//! in the `BENCH_sim.json` format: the first ever run records itself as
//! the baseline; later runs keep the stored baseline and report the
//! speedup against it, growing the repo's perf trajectory. The file also
//! carries a `phases` section: per-command nanoseconds in each simulated
//! phase (unit wait, array op, bus wait, transfer, GC) from the median
//! run's [`flash_sim::PhaseReport`] — mean plus p50/p99 from the log₂
//! histograms, which `ssdtrace diff` compares across commits.
//!
//! The host queue is bounded (`host_queue_depth: 64`): with the earlier
//! unbounded queue the whole 48 ms trace was admitted at once and drained
//! over a ~31 s GC-limited makespan, so "mean unit wait" measured the
//! ~5500-deep standing backlog (~11.5 s per command) instead of device
//! behavior. A bounded queue keeps the generator honest — arrivals stall
//! when the device is saturated — and makes the per-phase numbers
//! interpretable while still keeping GC continuously active.
//!
//! `SSDKEEPER_BENCH_PROBE=1` additionally measures the same workload with
//! a bounded [`flash_sim::EventRecorder`] attached and prints the probe
//! overhead relative to the `NullProbe` run — the number the probe
//! layer's ≤2 % discipline is checked against.

use bench::harness::black_box;
use flash_sim::{EventRecorder, IoRequest, Op, PhaseReport, SimBuilder, SsdConfig, TenantLayout};
use std::time::{Duration, Instant};

/// Requests in the sim_micro trace.
const REQUESTS: u64 = 24_000;
/// Logical pages preconditioned onto the device (fills it close to the
/// GC trigger so collection is active from the first measured write).
const LPN_SPACE: u64 = 54_400;
/// Hot region repeatedly overwritten/re-read during the measured run.
const HOT_LPNS: u64 = 4_096;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Table I timings on a tall plane: few planes, many blocks each, so the
/// per-plane GC work (victim selection, wear bookkeeping) dominates the
/// way it does at production block counts (Table I: 4096 blocks/plane).
fn sim_micro_cfg() -> SsdConfig {
    SsdConfig {
        channels: 4,
        chips_per_channel: 1,
        dies_per_chip: 1,
        planes_per_die: 1,
        blocks_per_plane: 2_048,
        pages_per_block: 16,
        gc_free_block_threshold: 0.6,
        wear_leveling_threshold: 64,
        host_queue_depth: 64,
        ..SsdConfig::paper_table1()
    }
}

/// 3:1 write:read mix over a hot region, page-sized requests, 2 µs apart.
fn sim_micro_trace() -> Vec<IoRequest> {
    (0..REQUESTS)
        .map(|i| {
            let op = if i % 4 == 3 { Op::Read } else { Op::Write };
            let lpn = (i * 131) % HOT_LPNS;
            IoRequest::new(i, 0, op, lpn, 1, i * 2_000)
        })
        .collect()
}

struct RunSample {
    events: u64,
    elapsed: Duration,
    events_per_sec: f64,
    phases: PhaseReport,
}

fn run_once(trace: &[IoRequest]) -> RunSample {
    let cfg = sim_micro_cfg();
    let layout = TenantLayout::shared(1, &cfg).with_lpn_space_all(LPN_SPACE);
    let sim = SimBuilder::new(cfg, layout)
        .precondition(&[1.0])
        .build()
        .expect("sim_micro config is valid");
    let start = Instant::now();
    let report = sim.run(trace).expect("sim_micro trace runs clean");
    let elapsed = start.elapsed();
    black_box(&report);
    RunSample {
        events: report.events_processed,
        elapsed,
        events_per_sec: report.events_per_sec(elapsed),
        phases: report.phases,
    }
}

/// The same workload with a bounded recorder attached — the probed path
/// whose overhead the ≤2 % discipline bounds.
fn run_once_recorded(trace: &[IoRequest]) -> RunSample {
    let cfg = sim_micro_cfg();
    let layout = TenantLayout::shared(1, &cfg).with_lpn_space_all(LPN_SPACE);
    let mut rec = EventRecorder::with_capacity(1 << 16);
    let sim = SimBuilder::new(cfg, layout)
        .precondition(&[1.0])
        .probe(&mut rec)
        .build()
        .expect("sim_micro config is valid");
    let start = Instant::now();
    let report = sim.run(trace).expect("sim_micro trace runs clean");
    let elapsed = start.elapsed();
    black_box(&report);
    black_box(rec.len());
    RunSample {
        events: report.events_processed,
        elapsed,
        events_per_sec: report.events_per_sec(elapsed),
        phases: report.phases,
    }
}

fn median(sorted: &[RunSample]) -> &RunSample {
    &sorted[(sorted.len() - 1) / 2]
}

fn main() {
    let iters = env_usize("SSDKEEPER_BENCH_ITERS", 10).max(1);
    let warmup = env_usize("SSDKEEPER_BENCH_WARMUP", 2);
    let trace = sim_micro_trace();

    for _ in 0..warmup {
        black_box(run_once(&trace));
    }
    let mut samples: Vec<RunSample> = (0..iters).map(|_| run_once(&trace)).collect();
    samples.sort_unstable_by_key(|s| s.elapsed);
    let med = median(&samples);
    let events = med.events;
    let events_per_sec = med.events_per_sec;

    println!(
        "sim_throughput/sim_micro  iters={iters} events={events} \
         min={:?} median={:?} max={:?}  {:.0} events/s",
        samples[0].elapsed,
        med.elapsed,
        samples[samples.len() - 1].elapsed,
        events_per_sec,
    );

    if std::env::var("SSDKEEPER_BENCH_PROBE").map_or(false, |v| v == "1") {
        for _ in 0..warmup {
            black_box(run_once_recorded(&trace));
        }
        let mut probed: Vec<RunSample> = (0..iters).map(|_| run_once_recorded(&trace)).collect();
        probed.sort_unstable_by_key(|s| s.elapsed);
        let pmed = median(&probed);
        let overhead = pmed.elapsed.as_secs_f64() / med.elapsed.as_secs_f64() - 1.0;
        println!(
            "sim_throughput/sim_micro+recorder  median={:?}  {:.0} events/s  \
             probe overhead {:+.2}% vs NullProbe",
            pmed.elapsed,
            pmed.events_per_sec,
            overhead * 100.0,
        );
    }

    if let Ok(path) = std::env::var("SSDKEEPER_BENCH_JSON") {
        write_json(
            &path,
            events,
            med.elapsed.as_nanos() as u64,
            events_per_sec,
            &med.phases,
        );
    }
}

/// Reads `"key": <number>` out of `section`'s object in our own JSON.
fn json_number(text: &str, section: &str, key: &str) -> Option<f64> {
    let sec = text.find(&format!("\"{section}\""))?;
    let rest = &text[sec..];
    let k = rest.find(&format!("\"{key}\""))?;
    let after = &rest[k..];
    let colon = after.find(':')?;
    let tail = after[colon + 1..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

fn write_json(path: &str, events: u64, median_ns: u64, events_per_sec: f64, phases: &PhaseReport) {
    // Keep the recorded baseline when the file already has one so the
    // speedup is always measured against the first committed run.
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    let (base_events, base_median, base_eps) = match (
        json_number(&existing, "baseline", "events"),
        json_number(&existing, "baseline", "median_ns"),
        json_number(&existing, "baseline", "events_per_sec"),
    ) {
        (Some(e), Some(m), Some(eps)) => (e as u64, m as u64, eps),
        _ => (events, median_ns, events_per_sec),
    };
    let speedup = events_per_sec / base_eps;
    // One phase entry: mean plus log₂-bucketed p50/p99 (the tails
    // `ssdtrace diff` holds the line on).
    let phase = |h: &flash_sim::PhaseHist| {
        format!(
            "{{ \"mean_ns\": {:.1}, \"p50_ns\": {}, \"p99_ns\": {} }}",
            h.mean(),
            h.percentile(0.50),
            h.percentile(0.99),
        )
    };
    // "phases" must stay after "current": json_number scans forward from
    // the first occurrence of the section name.
    let body = format!(
        "{{\n  \"bench\": \"sim_throughput\",\n  \"workload\": \"sim_micro\",\n  \
         \"requests\": {REQUESTS},\n  \"hot_lpns\": {HOT_LPNS},\n  \
         \"geometry\": \"4ch x 1chip x 1die x 1plane, 2048 blocks x 16 pages, qd 64\",\n  \
         \"baseline\": {{ \"events\": {base_events}, \"median_ns\": {base_median}, \
         \"events_per_sec\": {base_eps:.1} }},\n  \
         \"current\": {{ \"events\": {events}, \"median_ns\": {median_ns}, \
         \"events_per_sec\": {events_per_sec:.1} }},\n  \
         \"phases\": {{\n    \"wait_unit\": {},\n    \"array\": {},\n    \
         \"wait_bus\": {},\n    \"transfer\": {},\n    \"gc_exec\": {},\n    \
         \"queue_depth\": {{ \"mean\": {:.2}, \"p50\": {}, \"p99\": {} }}\n  }},\n  \
         \"speedup_vs_baseline\": {speedup:.3}\n}}\n",
        phase(&phases.wait_unit),
        phase(&phases.array),
        phase(&phases.wait_bus),
        phase(&phases.transfer),
        phase(&phases.gc_exec),
        phases.queue_depth.mean(),
        phases.queue_depth.percentile(0.50),
        phases.queue_depth.percentile(0.99),
    );
    std::fs::write(path, body).expect("write BENCH json");
    println!("sim_throughput: wrote {path} (speedup vs baseline: {speedup:.3}x)");
}
