//! Figure 6 / §IV-D bench: channel-allocator inference cost.
//!
//! The paper argues the allocator's overhead is negligible
//! (`Σ Nᵢ·Nᵢ₊₁ = 3264` multiplications per decision); this bench measures
//! the actual per-decision wall time of the 9→64→42 forward pass, plus
//! the cost of assembling the feature vector from window observations.

use bench::harness::{black_box, Group};
use bench::{bench_allocator, bench_features};
use flash_sim::{IoRequest, Op};
use ssdkeeper::FeatureVector;
use workloads::{IntensityScale, ObservedFeatures};

fn inference() {
    let allocator = bench_allocator();
    let features = bench_features();
    let mut group = Group::new("fig6_inference");
    group.bench("predict_strategy", || {
        allocator.predict(black_box(&features))
    });
    group.bench("predict_proba", || {
        allocator.predict_proba(black_box(&features))
    });
    group.finish();
}

fn feature_collection() {
    // A 10k-request observation window.
    let trace: Vec<IoRequest> = (0..10_000)
        .map(|i| {
            let op = if i % 3 == 0 { Op::Write } else { Op::Read };
            IoRequest::new(i, (i % 4) as u16, op, i % 1024, 1, i * 1_000)
        })
        .collect();
    let scale = IntensityScale::new(10_000.0);
    let mut group = Group::new("features_collector");
    group.bench("collect_10k_window", || {
        let obs = ObservedFeatures::collect(&trace, 4, u64::MAX);
        FeatureVector::from_observed(&obs, &scale)
    });
    group.finish();
}

fn main() {
    inference();
    feature_collection();
}
