//! Figure 6 / §IV-D bench: channel-allocator inference cost.
//!
//! The paper argues the allocator's overhead is negligible
//! (`Σ Nᵢ·Nᵢ₊₁ = 3264` multiplications per decision); this bench measures
//! the actual per-decision wall time of the 9→64→42 forward pass, plus
//! the cost of assembling the feature vector from window observations.

use bench::{bench_allocator, bench_features};
use criterion::{criterion_group, criterion_main, Criterion};
use flash_sim::{IoRequest, Op};
use ssdkeeper::FeatureVector;
use workloads::{IntensityScale, ObservedFeatures};

fn inference(c: &mut Criterion) {
    let allocator = bench_allocator();
    let features = bench_features();
    let mut group = c.benchmark_group("fig6_inference");
    group.bench_function("predict_strategy", |b| {
        b.iter(|| allocator.predict(criterion::black_box(&features)))
    });
    group.bench_function("predict_proba", |b| {
        b.iter(|| allocator.predict_proba(criterion::black_box(&features)))
    });
    group.finish();
}

fn feature_collection(c: &mut Criterion) {
    // A 10k-request observation window.
    let trace: Vec<IoRequest> = (0..10_000)
        .map(|i| {
            let op = if i % 3 == 0 { Op::Write } else { Op::Read };
            IoRequest::new(i, (i % 4) as u16, op, i % 1024, 1, i * 1_000)
        })
        .collect();
    let scale = IntensityScale::new(10_000.0);
    let mut group = c.benchmark_group("features_collector");
    group.bench_function("collect_10k_window", |b| {
        b.iter(|| {
            let obs = ObservedFeatures::collect(&trace, 4, u64::MAX);
            FeatureVector::from_observed(&obs, &scale)
        })
    });
    group.finish();
}

criterion_group!(benches, inference, feature_collection);
criterion_main!(benches);
