//! Figure 4 / Table III bench: one training epoch of the 9→64→42 network
//! under each optimizer configuration the paper sweeps.
//!
//! Table III reports absolute training times; these benches give the
//! per-epoch cost on this machine for the same four configurations (plus
//! the AdaGrad/RMSProp components as ablations).

use bench::tiny_dataset;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssdkeeper::learner::{DatasetSpec, Learner, OptimizerChoice};

fn training_epoch(c: &mut Criterion) {
    let dataset = tiny_dataset();
    let learner = Learner::new(DatasetSpec::quick(1));
    let mut group = c.benchmark_group("fig4_training_epoch");
    group.sample_size(20);
    let choices = [
        OptimizerChoice::Sgd,
        OptimizerChoice::SgdMomentum,
        OptimizerChoice::AdamRelu,
        OptimizerChoice::AdamLogistic,
        OptimizerChoice::AdaGrad,
        OptimizerChoice::RmsProp,
    ];
    for choice in choices {
        group.bench_with_input(
            BenchmarkId::from_parameter(choice.name()),
            &dataset,
            |b, dataset| {
                b.iter(|| learner.train_with(dataset, choice, 1, 7));
            },
        );
    }
    group.finish();
}

fn full_200_iteration_fit(c: &mut Criterion) {
    // The paper's Table III measures a full 200-iteration fit; bench the
    // best configuration end to end on the tiny dataset.
    let dataset = tiny_dataset();
    let learner = Learner::new(DatasetSpec::quick(1));
    let mut group = c.benchmark_group("fig4_full_fit");
    group.sample_size(10);
    group.bench_function("adam_logistic_200_iters", |b| {
        b.iter(|| learner.train_with(&dataset, OptimizerChoice::AdamLogistic, 200, 7));
    });
    group.finish();
}

criterion_group!(benches, training_epoch, full_200_iteration_fit);
criterion_main!(benches);
