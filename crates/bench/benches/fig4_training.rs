//! Figure 4 / Table III bench: one training epoch of the 9→64→42 network
//! under each optimizer configuration the paper sweeps.
//!
//! Table III reports absolute training times; these benches give the
//! per-epoch cost on this machine for the same four configurations (plus
//! the AdaGrad/RMSProp components as ablations).

use bench::harness::Group;
use bench::tiny_dataset;
use ssdkeeper::learner::{DatasetSpec, Learner, OptimizerChoice};

fn training_epoch() {
    let dataset = tiny_dataset();
    let learner = Learner::new(DatasetSpec::quick(1));
    let mut group = Group::new("fig4_training_epoch");
    group.sample_size(20);
    let choices = [
        OptimizerChoice::Sgd,
        OptimizerChoice::SgdMomentum,
        OptimizerChoice::AdamRelu,
        OptimizerChoice::AdamLogistic,
        OptimizerChoice::AdaGrad,
        OptimizerChoice::RmsProp,
    ];
    for choice in choices {
        group.bench(choice.name(), || learner.train_with(&dataset, choice, 1, 7));
    }
    group.finish();
}

fn full_200_iteration_fit() {
    // The paper's Table III measures a full 200-iteration fit; bench the
    // best configuration end to end on the tiny dataset.
    let dataset = tiny_dataset();
    let learner = Learner::new(DatasetSpec::quick(1));
    let mut group = Group::new("fig4_full_fit");
    group.sample_size(10);
    group.bench("adam_logistic_200_iters", || {
        learner.train_with(&dataset, OptimizerChoice::AdamLogistic, 200, 7)
    });
    group.finish();
}

fn main() {
    training_epoch();
    full_200_iteration_fit();
}
