//! The batching + quantization contract (DESIGN.md §"Batched and
//! quantized inference"):
//!
//! 1. Batched forward through [`ForwardScratch`] is **bit-identical**
//!    to the row-at-a-time path, for random shapes and seeds.
//! 2. Quantized inference is **arg-max identical** to f32 on the
//!    equivalence corpus (realistic keeper feature vectors), and on
//!    random networks whenever the f32 top-2 logit gap exceeds twice
//!    the observed logit error.
//! 3. The `annq-v1` text format round-trips a quantized model exactly,
//!    pinned by a golden fixture.

use ann::activation::Activation;
use ann::io::{format_quant_network, parse_quant_network};
use ann::layer::Dense;
use ann::matrix::Matrix;
use ann::network::{ForwardScratch, Network};
use ann::quant::{QuantNetwork, QuantScratch};
use simrng::{Rng, SimRng};

fn random_network(rng: &mut SimRng) -> Network {
    let input = rng.gen_range(2usize..12);
    let hidden = rng.gen_range(3usize..33);
    let classes = rng.gen_range(2usize..17);
    let act = match rng.gen_range(0u32..3) {
        0 => Activation::ReLU,
        1 => Activation::Logistic,
        _ => Activation::Tanh,
    };
    Network::builder(input, rng.gen())
        .hidden(hidden, act)
        .output(classes)
        .build()
}

fn random_batch(rng: &mut SimRng, rows: usize, cols: usize) -> Matrix {
    // ReLU-style zeros included: the kernel's sparsity skip must not
    // depend on batch shape.
    Matrix::from_fn(rows, cols, |_, _| {
        if rng.gen_range(0u32..4) == 0 {
            0.0
        } else {
            rng.gen_range(-2.0f32..2.0)
        }
    })
}

/// Property: for random networks, shapes, and seeds, the batched
/// scratch-buffer forward equals running each row alone — bit for bit,
/// with the scratch reused (warm) across every case.
#[test]
fn batched_forward_is_bit_identical_to_row_by_row() {
    let mut rng = SimRng::seed_from_u64(0xBA7C);
    let mut scratch = ForwardScratch::new();
    for _ in 0..40 {
        let net = random_network(&mut rng);
        let rows = rng.gen_range(1usize..70);
        let x = random_batch(&mut rng, rows, net.input_width());
        let batched = net.forward_batch_into(&x, &mut scratch).clone();
        assert_eq!((batched.rows(), batched.cols()), (rows, net.output_width()));
        for i in 0..rows {
            let one = Matrix::from_rows(&[x.row(i)]);
            let alone = net.forward(&one);
            for (a, b) in batched.row(i).iter().zip(alone.row(0).iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "row {i} drifted under batching");
            }
        }
        let preds = net.predict_batch(&x, &mut scratch);
        for i in 0..rows {
            assert_eq!(preds[i], net.predict_one(x.row(i)), "arg-max drifted");
        }
    }
}

/// The keeper's actual input domain: intensity level on the /19 grid,
/// 0/1 read-write characters, non-negative shares summing to 1.
fn feature_corpus(rng: &mut SimRng, count: usize) -> Matrix {
    let mut m = Matrix::zeros(count, 9);
    for i in 0..count {
        let row = m.row_mut(i);
        row[0] = rng.gen_range(0u32..20) as f32 / 19.0;
        for c in 1..5 {
            row[c] = rng.gen_range(0u32..2) as f32;
        }
        let mut total = 0.0f32;
        let mut raw = [0.0f32; 4];
        for r in raw.iter_mut() {
            *r = rng.gen_range(0.05f32..1.0);
            total += *r;
        }
        for (c, r) in raw.iter().enumerate() {
            row[5 + c] = r / total;
        }
    }
    m
}

/// Acceptance gate: quantized inference is arg-max identical to f32 on
/// the equivalence corpus — paper-topology networks over realistic
/// feature vectors, both hidden activations, several seeds.
#[test]
fn quantized_argmax_matches_f32_on_equivalence_corpus() {
    let mut rng = SimRng::seed_from_u64(0x0C0FFEE);
    let corpus = feature_corpus(&mut rng, 256);
    let mut f32_scratch = ForwardScratch::new();
    let mut q_scratch = QuantScratch::new();
    for act in [Activation::Logistic, Activation::ReLU] {
        for seed in [1u64, 2, 3, 4, 5] {
            let net = Network::paper_topology(act, seed);
            let q = QuantNetwork::from_network(&net);
            let expected = net.predict_batch(&corpus, &mut f32_scratch);
            let got = q.predict_batch(&corpus, &mut q_scratch);
            assert_eq!(
                got, expected,
                "quantized arg-max diverged (act {act:?}, seed {seed})"
            );
        }
    }
}

/// Property over random networks: the quantized logits stay within a
/// small absolute error of the f32 logits, and the arg-max agrees
/// whenever the f32 top-2 gap exceeds twice that row's observed error
/// (the guarantee DESIGN.md documents — ties and hairline gaps may
/// legitimately flip).
#[test]
fn quantized_argmax_matches_when_the_logit_gap_is_wide() {
    let mut rng = SimRng::seed_from_u64(0x51ACE);
    let mut q_scratch = QuantScratch::new();
    let mut f32_scratch = ForwardScratch::new();
    for _ in 0..40 {
        let net = random_network(&mut rng);
        let q = QuantNetwork::from_network(&net);
        let rows = rng.gen_range(1usize..33);
        let x = random_batch(&mut rng, rows, net.input_width());
        let f_logits = net.forward_batch_into(&x, &mut f32_scratch).clone();
        let q_logits = q.forward_batch_into(&x, &mut q_scratch).clone();
        for i in 0..rows {
            let f_row = f_logits.row(i);
            let q_row = q_logits.row(i);
            let err = f_row
                .iter()
                .zip(q_row.iter())
                .fold(0.0f32, |m, (a, b)| m.max((a - b).abs()));
            let scale = f_row.iter().fold(1.0f32, |m, &v| m.max(v.abs()));
            assert!(
                err <= 0.02 * scale,
                "quantization error {err} too large for logit scale {scale}"
            );
            let argmax = |row: &[f32]| {
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .unwrap()
                    .0
            };
            let best = argmax(f_row);
            let mut sorted: Vec<f32> = f_row.to_vec();
            sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
            let gap = if sorted.len() > 1 {
                sorted[0] - sorted[1]
            } else {
                f32::INFINITY
            };
            if gap > 2.0 * err {
                assert_eq!(
                    argmax(q_row),
                    best,
                    "arg-max flipped despite gap {gap} > 2·err {err}"
                );
            }
        }
    }
}

/// The golden `annq-v1` fixture: a hand-pinned quantized model whose
/// serialized text must never drift, and whose parse must reproduce the
/// exact in-memory model. Regenerate deliberately with
/// `SSDKEEPER_REGEN_GOLDEN=1 cargo test -p ann --test batch_quant`.
#[test]
fn golden_quant_fixture_round_trips() {
    let w1 = Matrix::from_vec(
        3,
        4,
        vec![
            0.5, -1.0, 0.25, 2.0, //
            -0.125, 0.75, -2.0, 1.5, //
            1.0, -0.5, 0.0625, -0.25,
        ],
    );
    let w2 = Matrix::from_vec(4, 2, vec![1.0, -1.0, 0.5, 0.25, -0.75, 0.125, 2.0, -0.5]);
    let net = Network::from_layers(vec![
        Dense {
            w: w1,
            b: vec![0.1, -0.2, 0.3, 0.0],
            act: Activation::Logistic,
        },
        Dense {
            w: w2,
            b: vec![0.05, -0.05],
            act: Activation::Identity,
        },
    ]);
    let q = QuantNetwork::from_network(&net);
    let text = format_quant_network(&q);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/quant_model.txt");
    if std::env::var("SSDKEEPER_REGEN_GOLDEN").is_ok() {
        std::fs::write(path, &text).expect("write golden fixture");
    }
    let golden = std::fs::read_to_string(path).expect("golden fixture present");
    assert_eq!(text, golden, "annq-v1 serialization drifted from golden");
    let parsed = parse_quant_network(&golden).expect("golden fixture parses");
    assert_eq!(parsed, q, "golden fixture no longer reproduces the model");
    // And the parsed model predicts identically to the f32 original on
    // a fixed probe batch.
    let probe = Matrix::from_rows(&[&[0.2, -0.4, 0.9], &[1.0, 0.0, -1.0], &[0.0, 0.0, 0.0]]);
    let mut scratch = QuantScratch::new();
    assert_eq!(
        parsed.predict_batch(&probe, &mut scratch),
        net.predict(&probe)
    );
}
