//! Multi-layer perceptron assembled from dense layers.

use crate::activation::Activation;
use crate::layer::{Dense, DenseGrads};
use crate::loss::{softmax_cross_entropy, softmax_rows};
use crate::matrix::Matrix;

/// A feed-forward network. The last layer emits logits (identity
/// activation); classification probabilities come from softmax in the
/// loss / in [`Network::predict_proba`].
#[derive(Debug, Clone, PartialEq)]
pub struct Network {
    layers: Vec<Dense>,
}

/// Builder for [`Network`]; see [`Network::builder`].
pub struct NetworkBuilder {
    input: usize,
    rng: simrng::SimRng,
    layers: Vec<Dense>,
    output_done: bool,
}

/// Reusable buffers for [`Network::forward_batch_into`].
///
/// Two ping-pong activation matrices the batched forward pass bounces
/// between. The caller owns the scratch and may reuse it across calls
/// and across networks — the buffers hold only activations, never
/// weights, so there is no stale-weights hazard. Once both matrices have
/// reached their high-water capacity, batched forward passes allocate
/// nothing.
#[derive(Debug)]
pub struct ForwardScratch {
    ping: Matrix,
    pong: Matrix,
}

impl Default for ForwardScratch {
    fn default() -> Self {
        Self {
            ping: Matrix::zeros(0, 0),
            pong: Matrix::zeros(0, 0),
        }
    }
}

impl ForwardScratch {
    /// An empty scratch; buffers grow to fit on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Network {
    /// Starts building a network with `input` features; `seed` makes the
    /// weight initialization reproducible.
    pub fn builder(input: usize, seed: u64) -> NetworkBuilder {
        NetworkBuilder {
            input,
            rng: simrng::SimRng::seed_from_u64(seed),
            layers: Vec::new(),
            output_done: false,
        }
    }

    /// The paper's topology: 9 input features, one hidden layer of 64
    /// neurons with the given activation, 42 output classes (§IV-D).
    pub fn paper_topology(hidden_act: Activation, seed: u64) -> Self {
        Self::builder(9, seed)
            .hidden(64, hidden_act)
            .output(42)
            .build()
    }

    /// Constructs directly from layers (used by [`crate::io`]).
    ///
    /// # Panics
    ///
    /// Panics if consecutive layers have mismatched widths or no layers
    /// are given.
    pub fn from_layers(layers: Vec<Dense>) -> Self {
        assert!(!layers.is_empty(), "a network needs at least one layer");
        for pair in layers.windows(2) {
            assert_eq!(pair[0].fan_out(), pair[1].fan_in(), "layer width mismatch");
        }
        Self { layers }
    }

    /// The layers, input to output.
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Input feature count.
    pub fn input_width(&self) -> usize {
        self.layers[0].fan_in()
    }

    /// Output class count.
    pub fn output_width(&self) -> usize {
        self.layers.last().expect("non-empty").fan_out()
    }

    /// Forward pass returning the logits for a batch.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut a = self.layers[0].forward(x);
        for layer in &self.layers[1..] {
            a = layer.forward(&a);
        }
        a
    }

    /// Batched forward pass through caller-provided scratch buffers,
    /// returning the logits `[batch, classes]` as a borrow of the
    /// scratch.
    ///
    /// Runs the branchless batched matmul kernel
    /// ([`crate::matrix::Matrix::matmul_into`]) once per layer for the
    /// whole batch instead of once per row, ping-ponging activations
    /// between two reused matrices. Zero allocations once the scratch is
    /// warm, and each output row is bit-identical to
    /// [`Network::forward`] on that row alone (the kernel treats rows
    /// independently and matches the row-at-a-time kernel bit for bit on
    /// finite weights).
    ///
    /// # Panics
    ///
    /// Panics if `x.cols()` differs from the input width.
    pub fn forward_batch_into<'s>(
        &self,
        x: &Matrix,
        scratch: &'s mut ForwardScratch,
    ) -> &'s Matrix {
        assert_eq!(x.cols(), self.input_width(), "feature width mismatch");
        obs::span!("ann_forward_batch");
        obs::counter_add!("ann.rows", x.rows() as u64);
        self.layers[0].forward_batch_into(x, &mut scratch.ping);
        for (idx, layer) in self.layers.iter().enumerate().skip(1) {
            if idx % 2 == 1 {
                layer.forward_batch_into(&scratch.ping, &mut scratch.pong);
            } else {
                layer.forward_batch_into(&scratch.pong, &mut scratch.ping);
            }
        }
        if (self.layers.len() - 1) % 2 == 1 {
            &scratch.pong
        } else {
            &scratch.ping
        }
    }

    /// Batched arg-max prediction into a reused output vector; the
    /// batched counterpart of calling [`Network::predict_one`] per row.
    /// Ties resolve to the highest index, exactly like
    /// [`Network::predict`].
    pub fn predict_batch_into(
        &self,
        x: &Matrix,
        scratch: &mut ForwardScratch,
        out: &mut Vec<usize>,
    ) {
        out.clear();
        let logits = self.forward_batch_into(x, scratch);
        out.reserve(logits.rows());
        for i in 0..logits.rows() {
            let class = logits
                .row(i)
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                .map(|(j, _)| j)
                .expect("non-empty row");
            out.push(class);
        }
    }

    /// Batched arg-max prediction, allocating the result vector.
    pub fn predict_batch(&self, x: &Matrix, scratch: &mut ForwardScratch) -> Vec<usize> {
        let mut out = Vec::new();
        self.predict_batch_into(x, scratch, &mut out);
        out
    }

    /// Forward pass keeping every intermediate activation
    /// (`[x, a1, ..., logits]`); used by backprop.
    pub fn forward_trace(&self, x: &Matrix) -> Vec<Matrix> {
        let mut acts = Vec::with_capacity(self.layers.len() + 1);
        acts.push(x.clone());
        for layer in &self.layers {
            let next = layer.forward(acts.last().expect("non-empty"));
            acts.push(next);
        }
        acts
    }

    /// Class probabilities (softmax of the logits).
    pub fn predict_proba(&self, x: &Matrix) -> Matrix {
        let mut logits = self.forward(x);
        softmax_rows(&mut logits);
        logits
    }

    /// Arg-max class per row.
    pub fn predict(&self, x: &Matrix) -> Vec<usize> {
        let logits = self.forward(x);
        (0..logits.rows())
            .map(|i| {
                logits
                    .row(i)
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                    .map(|(j, _)| j)
                    .expect("non-empty row")
            })
            .collect()
    }

    /// Predicts the class of a single feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the input width.
    pub fn predict_one(&self, features: &[f32]) -> usize {
        assert_eq!(features.len(), self.input_width(), "feature width mismatch");
        let x = Matrix::from_rows(&[features]);
        self.predict(&x)[0]
    }

    /// Mean softmax cross-entropy loss and per-layer parameter gradients
    /// for a labelled batch.
    pub fn loss_and_grads(&self, x: &Matrix, labels: &[usize]) -> (f32, Vec<DenseGrads>) {
        let acts = self.forward_trace(x);
        let logits = acts.last().expect("non-empty trace");
        let (loss, mut upstream) = softmax_cross_entropy(logits, labels);
        let mut grads: Vec<DenseGrads> = Vec::with_capacity(self.layers.len());
        for (idx, layer) in self.layers.iter().enumerate().rev() {
            let (g, dx) = layer.backward(&acts[idx], &acts[idx + 1], &upstream);
            grads.push(g);
            upstream = dx;
        }
        grads.reverse();
        (loss, grads)
    }

    /// Mean loss on a labelled batch without computing gradients.
    pub fn loss(&self, x: &Matrix, labels: &[usize]) -> f32 {
        let logits = self.forward(x);
        softmax_cross_entropy(&logits, labels).0
    }

    /// Mutable access for optimizers: `(w, b)` of layer `idx`.
    pub(crate) fn params_mut(&mut self, idx: usize) -> (&mut Matrix, &mut Vec<f32>) {
        let layer = &mut self.layers[idx];
        (&mut layer.w, &mut layer.b)
    }

    /// Total parameter bytes (the paper's storage-overhead figure).
    pub fn param_bytes(&self) -> usize {
        self.layers.iter().map(Dense::param_bytes).sum()
    }

    /// Total multiplications per forward pass per input row (the paper's
    /// computational-overhead figure, `Σ Nᵢ·Nᵢ₊₁`).
    pub fn forward_mults(&self) -> usize {
        self.layers.iter().map(Dense::forward_mults).sum()
    }
}

impl NetworkBuilder {
    /// Appends a hidden layer of `width` neurons.
    pub fn hidden(mut self, width: usize, act: Activation) -> Self {
        assert!(!self.output_done, "output layer already added");
        let fan_in = self.layers.last().map_or(self.input, Dense::fan_out);
        self.layers
            .push(Dense::new(fan_in, width, act, &mut self.rng));
        self
    }

    /// Appends the output (logit) layer with `classes` neurons.
    pub fn output(mut self, classes: usize) -> Self {
        assert!(!self.output_done, "output layer already added");
        let fan_in = self.layers.last().map_or(self.input, Dense::fan_out);
        self.layers.push(Dense::new(
            fan_in,
            classes,
            Activation::Identity,
            &mut self.rng,
        ));
        self.output_done = true;
        self
    }

    /// Finalizes the network.
    ///
    /// # Panics
    ///
    /// Panics if [`NetworkBuilder::output`] was never called.
    pub fn build(self) -> Network {
        assert!(self.output_done, "call .output(classes) before .build()");
        Network {
            layers: self.layers,
        }
    }
}

/// A fresh seeded RNG, for custom layer initialization in tests/examples.
pub fn seeded_rng(seed: u64) -> simrng::SimRng {
    simrng::SimRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_net() -> Network {
        Network::builder(2, 1)
            .hidden(4, Activation::Tanh)
            .output(3)
            .build()
    }

    #[test]
    fn builder_produces_expected_shape() {
        let net = tiny_net();
        assert_eq!(net.input_width(), 2);
        assert_eq!(net.output_width(), 3);
        assert_eq!(net.layers().len(), 2);
    }

    #[test]
    fn paper_topology_dimensions_and_costs() {
        let net = Network::paper_topology(Activation::Logistic, 1);
        assert_eq!(net.input_width(), 9);
        assert_eq!(net.output_width(), 42);
        assert_eq!(net.forward_mults(), 9 * 64 + 64 * 42);
        // Storage stays in the low kilobytes — "negligible" per §IV-D.
        assert!(net.param_bytes() < 16 * 1024);
    }

    #[test]
    fn forward_shapes() {
        let net = tiny_net();
        let x = Matrix::zeros(5, 2);
        let out = net.forward(&x);
        assert_eq!(out.rows(), 5);
        assert_eq!(out.cols(), 3);
        let trace = net.forward_trace(&x);
        assert_eq!(trace.len(), 3);
        assert_eq!(trace[1].cols(), 4);
    }

    #[test]
    fn predict_proba_rows_sum_to_one() {
        let net = tiny_net();
        let x = Matrix::from_rows(&[&[0.5, -0.5], &[1.0, 1.0]]);
        let p = net.predict_proba(&x);
        for i in 0..2 {
            assert!((p.row(i).iter().sum::<f32>() - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn predict_matches_argmax_of_proba() {
        let net = tiny_net();
        let x = Matrix::from_rows(&[&[0.2, 0.9], &[-1.0, 0.3]]);
        let preds = net.predict(&x);
        let p = net.predict_proba(&x);
        for (i, &c) in preds.iter().enumerate() {
            let best = p
                .row(i)
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            assert_eq!(c, best);
        }
    }

    #[test]
    fn predict_one_checks_width() {
        let net = tiny_net();
        let c = net.predict_one(&[0.1, 0.2]);
        assert!(c < 3);
    }

    #[test]
    #[should_panic(expected = "feature width mismatch")]
    fn predict_one_rejects_bad_width() {
        let _ = tiny_net().predict_one(&[0.1]);
    }

    #[test]
    fn same_seed_same_network() {
        let a = Network::paper_topology(Activation::ReLU, 9);
        let b = Network::paper_topology(Activation::ReLU, 9);
        assert_eq!(a, b);
        let c = Network::paper_topology(Activation::ReLU, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn from_layers_validates_widths() {
        let mut rng = seeded_rng(0);
        let l1 = Dense::new(2, 4, Activation::ReLU, &mut rng);
        let l2 = Dense::new(4, 3, Activation::Identity, &mut rng);
        let net = Network::from_layers(vec![l1.clone(), l2]);
        assert_eq!(net.input_width(), 2);
        let bad = Dense::new(5, 3, Activation::Identity, &mut rng);
        let result = std::panic::catch_unwind(|| Network::from_layers(vec![l1, bad]));
        assert!(result.is_err());
    }

    /// The scratch-buffer batched path must match the allocating forward
    /// bit for bit, and its arg-max must match `predict_one` per row —
    /// including on a second call with warm buffers.
    #[test]
    fn batched_forward_matches_rowwise_bit_for_bit() {
        let net = Network::paper_topology(Activation::Logistic, 5);
        let x = Matrix::from_fn(17, 9, |i, j| ((i * 31 + j * 7) % 13) as f32 / 13.0 - 0.4);
        let mut scratch = ForwardScratch::new();
        for _ in 0..2 {
            let batched = net.forward_batch_into(&x, &mut scratch).clone();
            let reference = net.forward(&x);
            assert_eq!((batched.rows(), batched.cols()), (17, 42));
            for (a, b) in batched.as_slice().iter().zip(reference.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits(), "batched logits drifted");
            }
        }
        let mut preds = Vec::new();
        net.predict_batch_into(&x, &mut scratch, &mut preds);
        assert_eq!(preds.len(), 17);
        for i in 0..x.rows() {
            assert_eq!(preds[i], net.predict_one(x.row(i)));
        }
    }

    #[test]
    fn whole_network_gradient_check() {
        let net = tiny_net();
        let x = Matrix::from_rows(&[&[0.4, -0.8], &[0.1, 0.9]]);
        let labels = [0usize, 2];
        let (_, grads) = net.loss_and_grads(&x, &labels);
        let h = 1e-2f32;
        #[allow(clippy::needless_range_loop)]
        for li in 0..net.layers().len() {
            for i in 0..net.layers()[li].fan_in() {
                for j in 0..net.layers()[li].fan_out() {
                    let mut plus = net.clone();
                    {
                        let (w, _) = plus.params_mut(li);
                        w.set(i, j, w.get(i, j) + h);
                    }
                    let mut minus = net.clone();
                    {
                        let (w, _) = minus.params_mut(li);
                        w.set(i, j, w.get(i, j) - h);
                    }
                    let numeric = (plus.loss(&x, &labels) - minus.loss(&x, &labels)) / (2.0 * h);
                    let analytic = grads[li].w.get(i, j);
                    assert!(
                        (numeric - analytic).abs() < 2e-2,
                        "layer {li} dW[{i},{j}]: {numeric} vs {analytic}"
                    );
                }
            }
        }
    }
}
