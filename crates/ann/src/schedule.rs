//! Learning-rate schedules and training-control extensions.
//!
//! The paper trains with constant learning rates; these utilities support
//! the natural follow-up ablations (does a decayed rate close the SGD /
//! Adam gap? does early stopping prevent the overfitting the paper notes
//! for plain SGD?). They compose with any [`crate::optimizer::Optimizer`]
//! through [`Scheduled`], which scales the inner optimizer's update by
//! the schedule's factor for the current epoch.

use crate::optimizer::Optimizer;

/// A learning-rate multiplier as a function of the epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrSchedule {
    /// Constant factor 1.0 (the paper's setting).
    Constant,
    /// Multiply by `gamma` every `every` epochs (`gamma` in (0,1]).
    Step {
        /// Epochs between decays.
        every: usize,
        /// Decay factor per step.
        gamma: f64,
    },
    /// Cosine annealing from 1.0 down to `floor` over `total` epochs.
    Cosine {
        /// Epoch count of one annealing cycle.
        total: usize,
        /// Final multiplier.
        floor: f64,
    },
}

impl LrSchedule {
    /// Multiplier applied to the base learning rate at `epoch` (0-based).
    pub fn factor(&self, epoch: usize) -> f64 {
        match *self {
            LrSchedule::Constant => 1.0,
            LrSchedule::Step { every, gamma } => {
                let steps = epoch.checked_div(every).unwrap_or(0);
                gamma.powi(steps as i32)
            }
            LrSchedule::Cosine { total, floor } => {
                if total == 0 {
                    return 1.0;
                }
                let t = (epoch.min(total) as f64) / (total as f64);
                let cos = 0.5 * (1.0 + (std::f64::consts::PI * t).cos());
                floor + (1.0 - floor) * cos
            }
        }
    }
}

/// Wraps an optimizer with a schedule and optional decoupled weight decay
/// (AdamW-style: `p -= decay * lr_factor * p` before the inner update).
pub struct Scheduled<O: Optimizer> {
    inner: O,
    schedule: LrSchedule,
    weight_decay: f32,
    epoch: usize,
}

impl<O: Optimizer> Scheduled<O> {
    /// Wraps `inner` with `schedule` and no weight decay.
    pub fn new(inner: O, schedule: LrSchedule) -> Self {
        Self {
            inner,
            schedule,
            weight_decay: 0.0,
            epoch: 0,
        }
    }

    /// Adds decoupled weight decay (applied to weights on every update).
    pub fn with_weight_decay(mut self, decay: f32) -> Self {
        assert!((0.0..1.0).contains(&decay), "decay must be in [0,1)");
        self.weight_decay = decay;
        self
    }

    /// Advances to the next epoch (call once per epoch, e.g. from the
    /// trainer's `on_epoch_end`).
    pub fn step_epoch(&mut self) {
        self.epoch += 1;
    }

    /// Current epoch (0-based).
    pub fn epoch(&self) -> usize {
        self.epoch
    }

    /// Current learning-rate factor.
    pub fn current_factor(&self) -> f64 {
        self.schedule.factor(self.epoch)
    }
}

impl<O: Optimizer> Optimizer for Scheduled<O> {
    fn update(&mut self, slot: usize, params: &mut [f32], grads: &[f32]) {
        let factor = self.current_factor() as f32;
        if self.weight_decay > 0.0 {
            let shrink = 1.0 - self.weight_decay * factor;
            for p in params.iter_mut() {
                *p *= shrink;
            }
        }
        if (factor - 1.0).abs() < f32::EPSILON {
            self.inner.update(slot, params, grads);
        } else {
            // Scale gradients so the inner rule sees an effective lr of
            // base_lr * factor. Exact for SGD/momentum; for adaptive rules
            // this scales the step like torch's LambdaLR does.
            let scaled: Vec<f32> = grads.iter().map(|&g| g * factor).collect();
            self.inner.update(slot, params, &scaled);
        }
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

/// Early-stopping monitor over a validation metric (higher = better).
#[derive(Debug, Clone)]
pub struct EarlyStopping {
    patience: usize,
    min_delta: f32,
    best: f32,
    stale: usize,
}

impl EarlyStopping {
    /// Stops after `patience` epochs without an improvement of at least
    /// `min_delta`.
    pub fn new(patience: usize, min_delta: f32) -> Self {
        Self {
            patience,
            min_delta,
            best: f32::NEG_INFINITY,
            stale: 0,
        }
    }

    /// Feeds one epoch's validation metric; returns `true` when training
    /// should stop.
    pub fn observe(&mut self, metric: f32) -> bool {
        if metric > self.best + self.min_delta {
            self.best = metric;
            self.stale = 0;
        } else {
            self.stale += 1;
        }
        self.stale > self.patience
    }

    /// Best metric seen so far.
    pub fn best(&self) -> f32 {
        self.best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::Sgd;

    #[test]
    fn constant_schedule_is_identity() {
        for e in [0, 1, 57, 1000] {
            assert_eq!(LrSchedule::Constant.factor(e), 1.0);
        }
    }

    #[test]
    fn step_schedule_decays_at_boundaries() {
        let s = LrSchedule::Step {
            every: 10,
            gamma: 0.5,
        };
        assert_eq!(s.factor(0), 1.0);
        assert_eq!(s.factor(9), 1.0);
        assert_eq!(s.factor(10), 0.5);
        assert_eq!(s.factor(25), 0.25);
    }

    #[test]
    fn cosine_schedule_endpoints() {
        let s = LrSchedule::Cosine {
            total: 100,
            floor: 0.1,
        };
        assert!((s.factor(0) - 1.0).abs() < 1e-9);
        assert!((s.factor(100) - 0.1).abs() < 1e-9);
        assert!((s.factor(200) - 0.1).abs() < 1e-9, "clamps past the cycle");
        // Midpoint is halfway between floor and 1.
        assert!((s.factor(50) - 0.55).abs() < 1e-9);
    }

    #[test]
    fn cosine_is_monotone_decreasing() {
        let s = LrSchedule::Cosine {
            total: 50,
            floor: 0.0,
        };
        let factors: Vec<f64> = (0..=50).map(|e| s.factor(e)).collect();
        assert!(factors.windows(2).all(|w| w[1] <= w[0] + 1e-12));
    }

    #[test]
    fn scheduled_sgd_scales_steps() {
        let mut opt = Scheduled::new(
            Sgd::new(1.0),
            LrSchedule::Step {
                every: 1,
                gamma: 0.5,
            },
        );
        let mut p = vec![0.0f32];
        opt.update(0, &mut p, &[1.0]);
        assert!((p[0] + 1.0).abs() < 1e-6, "epoch 0: full step");
        opt.step_epoch();
        opt.update(0, &mut p, &[1.0]);
        assert!((p[0] + 1.5).abs() < 1e-6, "epoch 1: half step");
        assert_eq!(opt.epoch(), 1);
        assert!((opt.current_factor() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        let mut opt = Scheduled::new(Sgd::new(0.0), LrSchedule::Constant).with_weight_decay(0.1);
        let mut p = vec![10.0f32];
        opt.update(0, &mut p, &[0.0]);
        assert!((p[0] - 9.0).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "decay must be in")]
    fn invalid_decay_panics() {
        let _ = Scheduled::new(Sgd::new(0.1), LrSchedule::Constant).with_weight_decay(1.5);
    }

    #[test]
    fn scheduled_name_passes_through() {
        let opt = Scheduled::new(Sgd::new(0.1), LrSchedule::Constant);
        assert_eq!(opt.name(), "SGD");
    }

    #[test]
    fn early_stopping_triggers_after_patience() {
        let mut es = EarlyStopping::new(2, 0.0);
        assert!(!es.observe(0.5));
        assert!(!es.observe(0.6)); // improvement
        assert!(!es.observe(0.6)); // stale 1
        assert!(!es.observe(0.59)); // stale 2
        assert!(es.observe(0.58)); // stale 3 > patience 2
        assert_eq!(es.best(), 0.6);
    }

    #[test]
    fn early_stopping_min_delta_filters_noise() {
        let mut es = EarlyStopping::new(1, 0.05);
        assert!(!es.observe(0.50));
        assert!(!es.observe(0.52)); // +0.02 < min_delta → stale 1
        assert!(es.observe(0.54)); // still < 0.50+0.05 → stale 2 > patience
    }
}
