//! A minimal row-major `f32` matrix with the product kernels backprop
//! needs.
//!
//! The matrices involved here are tiny (the paper's net is 9 × 64 × 42),
//! so the kernels favour clarity and cache-friendly i-k-j loop order over
//! blocking or SIMD intrinsics; the compiler auto-vectorizes the inner
//! loops.

/// Dense row-major matrix of `f32`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data length mismatch");
        Self { rows, cols, data }
    }

    /// Builds from row slices (all rows must share a length).
    ///
    /// # Panics
    ///
    /// Panics on ragged input or zero rows.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "need at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds element-wise from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable element access.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        self.data[i * self.cols + j]
    }

    /// Mutable element access.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        self.data[i * self.cols + j] = v;
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The flat row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The flat row-major buffer, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Copies the given rows into a new matrix (used for minibatching).
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        out
    }

    /// Reshapes in place to `rows × cols`, reusing the backing buffer.
    ///
    /// Existing contents are unspecified afterwards (the kernels that use
    /// this overwrite every element). Grows the buffer only when the new
    /// shape needs more capacity than any earlier shape did, so a warm
    /// scratch matrix resizes without allocating.
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Packs `self` transposed into `bt` (column-major: `bt[j*k + kk] =
    /// self[kk, j]`), resizing `bt` as needed. This is the weight-side
    /// pack [`Matrix::matmul_prepacked_into`] consumes; packing once and
    /// reusing it across a batch is what makes batched inference cheap.
    pub fn pack_transposed_into(&self, bt: &mut Vec<f32>) {
        let (k, n) = (self.rows, self.cols);
        bt.resize(n * k, 0.0);
        for kk in 0..k {
            let b_row = self.row(kk);
            for (j, &b) in b_row.iter().enumerate() {
                bt[j * k + kk] = b;
            }
        }
    }

    /// `self × other` — shapes `[m,k] × [k,n] → [m,n]`.
    ///
    /// Packs `other` transposed once so the reduction walks both operands
    /// with unit stride, then computes four output columns per pass with
    /// independent accumulators. Every output element still accumulates
    /// its terms in ascending-`k` order with the `a == 0.0` skip (common
    /// after ReLU), so results are bit-identical to the naive i-k-j loop.
    ///
    /// # Panics
    ///
    /// Panics on a shape mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut bt = Vec::new();
        other.pack_transposed_into(&mut bt);
        let mut out = Matrix::zeros(0, 0);
        self.matmul_prepacked_into(other.cols, &bt, &mut out);
        out
    }

    /// `self × B` where `B` is supplied pre-packed (transposed, as
    /// produced by [`Matrix::pack_transposed_into`]), writing into `out`
    /// without allocating once `out`'s buffer is warm.
    ///
    /// Runs exactly the tiled kernel [`Matrix::matmul`] runs — same
    /// 4-column tiles, same ascending-`k` accumulation order, same
    /// `a == 0.0` skip — so each output row is bit-identical to the
    /// allocating path, for any batch of rows.
    ///
    /// # Panics
    ///
    /// Panics if `bt.len() != n * self.cols()`.
    pub fn matmul_prepacked_into(&self, n: usize, bt: &[f32], out: &mut Matrix) {
        let (m, k) = (self.rows, self.cols);
        assert_eq!(bt.len(), n * k, "packed operand shape mismatch");
        out.resize(m, n);
        for i in 0..m {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            let mut j = 0;
            while j + 4 <= n {
                let b0 = &bt[j * k..(j + 1) * k];
                let b1 = &bt[(j + 1) * k..(j + 2) * k];
                let b2 = &bt[(j + 2) * k..(j + 3) * k];
                let b3 = &bt[(j + 3) * k..(j + 4) * k];
                let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
                for (kk, &a) in a_row.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    s0 += a * b0[kk];
                    s1 += a * b1[kk];
                    s2 += a * b2[kk];
                    s3 += a * b3[kk];
                }
                out_row[j] = s0;
                out_row[j + 1] = s1;
                out_row[j + 2] = s2;
                out_row[j + 3] = s3;
                j += 4;
            }
            for (j, o) in out_row.iter_mut().enumerate().skip(j) {
                let bj = &bt[j * k..(j + 1) * k];
                let mut s = 0.0f32;
                for (kk, &a) in a_row.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    s += a * bj[kk];
                }
                *o = s;
            }
        }
    }

    /// `self × b` written into `out`, reusing `out`'s buffer — the
    /// batched-inference kernel.
    ///
    /// Walks `b` row-by-row and accumulates `a[i,k] · b[k,·]` into the
    /// output row, so every output element receives exactly the additions
    /// the naive i-k-j loop performs, in the same ascending-`k` order —
    /// bit-identical to [`Matrix::matmul`] whenever `b` is finite (the
    /// only divergence is the `a == 0.0` skip, which for finite weights
    /// only ever skips adding a signed zero, and a `+0.0`-initialized
    /// IEEE-754 accumulator is unchanged bit-for-bit by adding `±0.0`).
    /// Unlike the tiled kernel this loop has no per-element branch and
    /// its inner loop runs across the contiguous output row, so the
    /// compiler vectorizes it; combined with the reused output buffer
    /// this is what makes one batched call beat a loop of row calls.
    ///
    /// # Panics
    ///
    /// Panics on a shape mismatch.
    pub fn matmul_into(&self, b: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, b.rows, "matmul shape mismatch");
        let (m, k, n) = (self.rows, self.cols, b.cols);
        out.resize(m, n);
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let out_row = &mut out.data[i * n..(i + 1) * n];
            out_row.fill(0.0);
            for (kk, &a) in a_row.iter().enumerate() {
                let b_row = &b.data[kk * n..(kk + 1) * n];
                for (o, &w) in out_row.iter_mut().zip(b_row) {
                    *o += a * w;
                }
            }
        }
    }

    /// `selfᵀ × other` — shapes `[k,m]ᵀ × [k,n] → [m,n]` without
    /// materializing the transpose. This is the weight-gradient kernel
    /// (`xᵀ × delta`).
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch");
        let (k, m, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        for kk in 0..k {
            let a_row = self.row(kk);
            let b_row = other.row(kk);
            for (i, &a) in a_row.iter().enumerate().take(m) {
                if a == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self × otherᵀ` — shapes `[m,k] × [n,k]ᵀ → [m,n]` without
    /// materializing the transpose. This is the delta-propagation kernel
    /// (`delta × wᵀ`).
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_t shape mismatch");
        let (m, _k, n) = (self.rows, self.cols, other.rows);
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (j, o) in out_row.iter_mut().enumerate().take(n) {
                let b_row = other.row(j);
                *o = a_row.iter().zip(b_row.iter()).map(|(&a, &b)| a * b).sum();
            }
        }
        out
    }

    /// Adds `row` to every row of `self` (bias broadcast).
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.cols()`.
    pub fn add_row_broadcast(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.cols, "broadcast width mismatch");
        for i in 0..self.rows {
            for (v, &b) in self.row_mut(i).iter_mut().zip(row.iter()) {
                *v += b;
            }
        }
    }

    /// Sums each column into a vector (bias-gradient kernel).
    pub fn column_sums(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.cols];
        for i in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(i).iter()) {
                *o += v;
            }
        }
        out
    }

    /// Multiplies every element by `s`.
    pub fn scale(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrng::{Rng, RngCore, SimRng};

    fn approx(a: &Matrix, b: &Matrix, eps: f32) -> bool {
        a.rows() == b.rows()
            && a.cols() == b.cols()
            && a.as_slice()
                .iter()
                .zip(b.as_slice())
                .all(|(x, y)| (x - y).abs() <= eps)
    }

    #[test]
    fn constructors_and_access() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        let z = Matrix::zeros(2, 3);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let f = Matrix::from_fn(2, 2, |i, j| (i * 10 + j) as f32);
        assert_eq!(f.get(1, 1), 11.0);
    }

    #[test]
    #[should_panic(expected = "shape/data length mismatch")]
    fn from_vec_validates_shape() {
        let _ = Matrix::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged() {
        let _ = Matrix::from_rows(&[&[1.0], &[1.0, 2.0]]);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::from_fn(2, 2, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_validates_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn broadcast_and_column_sums() {
        let mut m = Matrix::zeros(3, 2);
        m.add_row_broadcast(&[1.0, 2.0]);
        assert_eq!(m.column_sums(), vec![3.0, 6.0]);
    }

    #[test]
    fn scale_multiplies_elements() {
        let mut m = Matrix::from_rows(&[&[1.0, -2.0]]);
        m.scale(0.5);
        assert_eq!(m.as_slice(), &[0.5, -1.0]);
    }

    #[test]
    fn gather_rows_copies_selected() {
        let m = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let g = m.gather_rows(&[2, 0, 2]);
        assert_eq!(g, Matrix::from_rows(&[&[3.0], &[1.0], &[3.0]]));
    }

    fn random_matrix(rows: usize, cols: usize, rng: &mut impl RngCore) -> Matrix {
        let data: Vec<f32> = (0..rows * cols)
            .map(|_| rng.gen_range(-3.0f32..3.0))
            .collect();
        Matrix::from_vec(rows, cols, data)
    }

    /// t_matmul(a, b) equals transpose(a).matmul(b).
    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let mut rng = SimRng::seed_from_u64(301);
        for _ in 0..64 {
            let a = random_matrix(4, 3, &mut rng);
            let b = random_matrix(4, 5, &mut rng);
            let at = Matrix::from_fn(3, 4, |i, j| a.get(j, i));
            assert!(approx(&a.t_matmul(&b), &at.matmul(&b), 1e-4));
        }
    }

    /// matmul_t(a, b) equals a.matmul(transpose(b)).
    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let mut rng = SimRng::seed_from_u64(302);
        for _ in 0..64 {
            let a = random_matrix(4, 3, &mut rng);
            let b = random_matrix(5, 3, &mut rng);
            let bt = Matrix::from_fn(3, 5, |i, j| b.get(j, i));
            assert!(approx(&a.matmul_t(&b), &a.matmul(&bt), 1e-4));
        }
    }

    /// The tiled kernel must be **bit-identical** to the naive i-k-j loop
    /// it replaced — training determinism depends on it. Random shapes
    /// (including remainder columns) with ReLU-style zero sparsity.
    #[test]
    fn matmul_is_bit_identical_to_naive_reference() {
        fn naive(a: &Matrix, b: &Matrix) -> Matrix {
            let (m, k, n) = (a.rows(), a.cols(), b.cols());
            let mut out = Matrix::zeros(m, n);
            for i in 0..m {
                for kk in 0..k {
                    let av = a.get(i, kk);
                    if av == 0.0 {
                        continue;
                    }
                    for j in 0..n {
                        out.set(i, j, out.get(i, j) + av * b.get(kk, j));
                    }
                }
            }
            out
        }
        let mut rng = SimRng::seed_from_u64(304);
        for _ in 0..64 {
            let m = rng.gen_range(1usize..7);
            let k = rng.gen_range(1usize..9);
            let n = rng.gen_range(1usize..11); // exercises the %4 remainder
            let sparse = |rng: &mut SimRng| {
                if rng.gen_range(0u32..3) == 0 {
                    0.0
                } else {
                    rng.gen_range(-3.0f32..3.0)
                }
            };
            let a = Matrix::from_vec(m, k, (0..m * k).map(|_| sparse(&mut rng)).collect());
            let b = Matrix::from_vec(k, n, (0..k * n).map(|_| sparse(&mut rng)).collect());
            let fast = a.matmul(&b);
            let slow = naive(&a, &b);
            for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "matmul drifted from reference");
            }
        }
    }

    /// The prepacked path with warm, reused scratch buffers must be
    /// bit-identical to the allocating `matmul` across varying shapes —
    /// the batched-inference contract.
    #[test]
    fn prepacked_matmul_reuses_buffers_bit_identically() {
        let mut rng = SimRng::seed_from_u64(305);
        let mut bt = Vec::new();
        let mut out = Matrix::zeros(0, 0);
        for _ in 0..32 {
            let m = rng.gen_range(1usize..9);
            let k = rng.gen_range(1usize..9);
            let n = rng.gen_range(1usize..11);
            let a = random_matrix(m, k, &mut rng);
            let b = random_matrix(k, n, &mut rng);
            b.pack_transposed_into(&mut bt);
            a.matmul_prepacked_into(n, &bt, &mut out);
            let reference = a.matmul(&b);
            assert_eq!(
                (out.rows(), out.cols()),
                (reference.rows(), reference.cols())
            );
            for (x, y) in out.as_slice().iter().zip(reference.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "prepacked kernel drifted");
            }
        }
    }

    /// The branchless batched kernel with a warm, reused output buffer
    /// must be bit-identical to `matmul` for finite operands — including
    /// ReLU-style zeros on both sides, where the tiled kernel's
    /// `a == 0.0` skip and the branchless `+= a * w` must land on the
    /// same bits.
    #[test]
    fn matmul_into_is_bit_identical_to_matmul() {
        let mut rng = SimRng::seed_from_u64(306);
        let mut out = Matrix::zeros(0, 0);
        for _ in 0..64 {
            let m = rng.gen_range(1usize..9);
            let k = rng.gen_range(1usize..9);
            let n = rng.gen_range(1usize..11);
            let sparse = |rng: &mut SimRng| {
                if rng.gen_range(0u32..3) == 0 {
                    0.0
                } else {
                    rng.gen_range(-3.0f32..3.0)
                }
            };
            let a = Matrix::from_vec(m, k, (0..m * k).map(|_| sparse(&mut rng)).collect());
            let b = Matrix::from_vec(k, n, (0..k * n).map(|_| sparse(&mut rng)).collect());
            a.matmul_into(&b, &mut out);
            let reference = a.matmul(&b);
            assert_eq!(
                (out.rows(), out.cols()),
                (reference.rows(), reference.cols())
            );
            for (x, y) in out.as_slice().iter().zip(reference.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "batched kernel drifted");
            }
        }
    }

    /// (a·b)·c == a·(b·c) within float tolerance.
    #[test]
    fn matmul_associative() {
        let mut rng = SimRng::seed_from_u64(303);
        for _ in 0..64 {
            let a = random_matrix(2, 3, &mut rng);
            let b = random_matrix(3, 4, &mut rng);
            let c = random_matrix(4, 2, &mut rng);
            let l = a.matmul(&b).matmul(&c);
            let r = a.matmul(&b.matmul(&c));
            assert!(approx(&l, &r, 1e-3));
        }
    }
}
