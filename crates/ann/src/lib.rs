//! `ann` — a from-scratch dense neural-network library.
//!
//! This crate replaces the scikit-learn MLP the SSDKeeper paper uses for
//! its strategy learner. It provides exactly what the paper exercises,
//! with no external numerics dependencies:
//!
//! * dense (fully-connected) layers with ReLU / logistic / tanh / identity
//!   activations ([`layer`], [`activation`]);
//! * softmax + cross-entropy classification loss ([`loss`]);
//! * minibatch backpropagation ([`train`]);
//! * the optimizer family the paper sweeps in Figure 4 / Table III — SGD,
//!   SGD with momentum, AdaGrad, RMSProp, and Adam ([`optimizer`]);
//! * dataset shuffling/splitting and accuracy metrics ([`data`],
//!   [`metrics`]);
//! * a plain-text model format for moving trained parameters into the
//!   simulated FTL ([`io`]), mirroring the paper's "train on the host,
//!   send the parameters to the FTL" deployment;
//! * batched scratch-buffer inference ([`network::ForwardScratch`]) and
//!   a fixed-point i16 inference mode ([`quant`]) for the decision hot
//!   path.
//!
//! # Example: learn XOR
//!
//! ```
//! use ann::prelude::*;
//!
//! let x = Matrix::from_rows(&[&[0.0, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]]);
//! let labels = vec![0usize, 1, 1, 0];
//! let data = Dataset::new(x, labels, 2).unwrap();
//! let mut net = Network::builder(2, 77)
//!     .hidden(16, Activation::Tanh)
//!     .output(2)
//!     .build();
//! let mut opt = Adam::new(0.05);
//! let mut trainer = Trainer::new(400, 4, 3);
//! trainer.fit(&mut net, &data, None, &mut opt);
//! assert_eq!(ann::metrics::accuracy(&net, &data), 1.0);
//! ```
#![warn(missing_docs)]

pub mod activation;
pub mod data;
pub mod io;
pub mod layer;
pub mod loss;
pub mod matrix;
pub mod metrics;
pub mod network;
pub mod optimizer;
pub mod quant;
pub mod schedule;
pub mod train;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::activation::Activation;
    pub use crate::data::Dataset;
    pub use crate::matrix::Matrix;
    pub use crate::network::{ForwardScratch, Network};
    pub use crate::optimizer::{AdaGrad, Adam, Momentum, Optimizer, RmsProp, Sgd};
    pub use crate::quant::{QuantNetwork, QuantScratch};
    pub use crate::schedule::{EarlyStopping, LrSchedule, Scheduled};
    pub use crate::train::{TrainHistory, Trainer};
}

pub use prelude::*;
