//! Plain-text model persistence.
//!
//! The paper trains on the host and "sends the parameters to the FTL"; the
//! wire format here is a deliberately simple line-oriented text layout so
//! a firmware-side parser would be trivial and diffs stay reviewable:
//!
//! ```text
//! ann-v1
//! layers <count>
//! layer <fan_in> <fan_out> <activation>
//! w <fan_in*fan_out floats, row-major, space-separated>
//! b <fan_out floats>
//! ...repeated per layer...
//! ```
//!
//! Quantized models ([`crate::quant::QuantNetwork`]) use the sibling
//! `annq-v1` layout: integers are written exactly (no float formatting
//! involved), so a quantized model round-trips bit-for-bit:
//!
//! ```text
//! annq-v1
//! layers <count>
//! layer <fan_in> <fan_out> <activation>
//! s <w_scale>
//! q <fan_in*fan_out i16 weights, row-major, space-separated>
//! b <fan_out floats>
//! ...repeated per layer...
//! ```

use crate::activation::Activation;
use crate::layer::Dense;
use crate::matrix::Matrix;
use crate::network::Network;
use crate::quant::{QuantDense, QuantNetwork};
use std::path::Path;

/// Errors from [`parse_network`] / [`load_network`].
#[derive(Debug)]
pub enum ModelIoError {
    /// File I/O failed.
    Io(std::io::Error),
    /// The text did not match the format.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl std::fmt::Display for ModelIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelIoError::Io(e) => write!(f, "model I/O error: {e}"),
            ModelIoError::Parse { line, message } => {
                write!(f, "model parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for ModelIoError {}

impl From<std::io::Error> for ModelIoError {
    fn from(e: std::io::Error) -> Self {
        ModelIoError::Io(e)
    }
}

fn parse_err(line: usize, message: impl Into<String>) -> ModelIoError {
    ModelIoError::Parse {
        line,
        message: message.into(),
    }
}

/// Serializes a network to the text format.
pub fn format_network(net: &Network) -> String {
    let mut out = String::new();
    out.push_str("ann-v1\n");
    out.push_str(&format!("layers {}\n", net.layers().len()));
    for layer in net.layers() {
        out.push_str(&format!(
            "layer {} {} {}\n",
            layer.fan_in(),
            layer.fan_out(),
            layer.act.name()
        ));
        out.push('w');
        for &v in layer.w.as_slice() {
            out.push(' ');
            out.push_str(&format!("{v:e}"));
        }
        out.push('\n');
        out.push('b');
        for &v in &layer.b {
            out.push(' ');
            out.push_str(&format!("{v:e}"));
        }
        out.push('\n');
    }
    out
}

/// Parses the text format back into a network.
pub fn parse_network(text: &str) -> Result<Network, ModelIoError> {
    let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l));
    let (ln, header) = lines.next().ok_or_else(|| parse_err(1, "empty input"))?;
    if header.trim() != "ann-v1" {
        return Err(parse_err(ln, format!("bad header `{header}`")));
    }
    let (ln, count_line) = lines
        .next()
        .ok_or_else(|| parse_err(2, "missing layer count"))?;
    let count: usize = count_line
        .strip_prefix("layers ")
        .and_then(|s| s.trim().parse().ok())
        .ok_or_else(|| parse_err(ln, "expected `layers <n>`"))?;
    if count == 0 {
        return Err(parse_err(ln, "a network needs at least one layer"));
    }

    let mut layers = Vec::with_capacity(count);
    for _ in 0..count {
        let (ln, meta) = lines
            .next()
            .ok_or_else(|| parse_err(0, "missing layer header"))?;
        let mut parts = meta.split_whitespace();
        if parts.next() != Some("layer") {
            return Err(parse_err(ln, "expected `layer <in> <out> <act>`"));
        }
        let fan_in: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(ln, "bad fan_in"))?;
        let fan_out: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(ln, "bad fan_out"))?;
        if fan_in == 0 || fan_out == 0 {
            return Err(parse_err(ln, "layer dimensions must be positive"));
        }
        let act = parts
            .next()
            .and_then(Activation::from_name)
            .ok_or_else(|| parse_err(ln, "bad activation"))?;

        let (ln_w, w_line) = lines
            .next()
            .ok_or_else(|| parse_err(ln, "missing weights"))?;
        let w_vals = parse_float_line(w_line, 'w', fan_in * fan_out, ln_w)?;
        let (ln_b, b_line) = lines
            .next()
            .ok_or_else(|| parse_err(ln, "missing biases"))?;
        let b_vals = parse_float_line(b_line, 'b', fan_out, ln_b)?;

        layers.push(Dense {
            w: Matrix::from_vec(fan_in, fan_out, w_vals),
            b: b_vals,
            act,
        });
    }
    for pair in layers.windows(2) {
        if pair[0].fan_out() != pair[1].fan_in() {
            return Err(parse_err(0, "layer width mismatch"));
        }
    }
    Ok(Network::from_layers(layers))
}

fn parse_float_line(
    line: &str,
    tag: char,
    expected: usize,
    ln: usize,
) -> Result<Vec<f32>, ModelIoError> {
    let rest = line
        .strip_prefix(tag)
        .ok_or_else(|| parse_err(ln, format!("expected `{tag} ...`")))?;
    let vals: Result<Vec<f32>, _> = rest.split_whitespace().map(str::parse).collect();
    let vals = vals.map_err(|e| parse_err(ln, format!("bad float: {e}")))?;
    if vals.len() != expected {
        return Err(parse_err(
            ln,
            format!("expected {expected} values, found {}", vals.len()),
        ));
    }
    Ok(vals)
}

/// Writes a network to a file.
pub fn save_network(net: &Network, path: impl AsRef<Path>) -> Result<(), ModelIoError> {
    std::fs::write(path, format_network(net))?;
    Ok(())
}

/// Reads a network from a file.
pub fn load_network(path: impl AsRef<Path>) -> Result<Network, ModelIoError> {
    let text = std::fs::read_to_string(path)?;
    parse_network(&text)
}

/// Serializes a quantized network to the `annq-v1` text format.
pub fn format_quant_network(net: &QuantNetwork) -> String {
    let mut out = String::new();
    out.push_str("annq-v1\n");
    out.push_str(&format!("layers {}\n", net.layers().len()));
    for layer in net.layers() {
        out.push_str(&format!(
            "layer {} {} {}\n",
            layer.fan_in(),
            layer.fan_out(),
            layer.activation().name()
        ));
        out.push_str(&format!("s {:e}\n", layer.w_scale()));
        out.push('q');
        for kk in 0..layer.fan_in() {
            for j in 0..layer.fan_out() {
                out.push(' ');
                out.push_str(&layer.qw(kk, j).to_string());
            }
        }
        out.push('\n');
        out.push('b');
        for &v in layer.bias() {
            out.push(' ');
            out.push_str(&format!("{v:e}"));
        }
        out.push('\n');
    }
    out
}

/// Parses the `annq-v1` text format back into a quantized network.
pub fn parse_quant_network(text: &str) -> Result<QuantNetwork, ModelIoError> {
    let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l));
    let (ln, header) = lines.next().ok_or_else(|| parse_err(1, "empty input"))?;
    if header.trim() != "annq-v1" {
        return Err(parse_err(ln, format!("bad header `{header}`")));
    }
    let (ln, count_line) = lines
        .next()
        .ok_or_else(|| parse_err(2, "missing layer count"))?;
    let count: usize = count_line
        .strip_prefix("layers ")
        .and_then(|s| s.trim().parse().ok())
        .ok_or_else(|| parse_err(ln, "expected `layers <n>`"))?;
    if count == 0 {
        return Err(parse_err(ln, "a network needs at least one layer"));
    }

    let mut layers = Vec::with_capacity(count);
    for _ in 0..count {
        let (ln, meta) = lines
            .next()
            .ok_or_else(|| parse_err(0, "missing layer header"))?;
        let mut parts = meta.split_whitespace();
        if parts.next() != Some("layer") {
            return Err(parse_err(ln, "expected `layer <in> <out> <act>`"));
        }
        let fan_in: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(ln, "bad fan_in"))?;
        let fan_out: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(ln, "bad fan_out"))?;
        if fan_in == 0 || fan_out == 0 {
            return Err(parse_err(ln, "layer dimensions must be positive"));
        }
        let act = parts
            .next()
            .and_then(Activation::from_name)
            .ok_or_else(|| parse_err(ln, "bad activation"))?;

        let (ln_s, s_line) = lines
            .next()
            .ok_or_else(|| parse_err(ln, "missing weight scale"))?;
        let w_scale: f32 = s_line
            .strip_prefix("s ")
            .and_then(|s| s.trim().parse().ok())
            .ok_or_else(|| parse_err(ln_s, "expected `s <scale>`"))?;
        if !(w_scale.is_finite() && w_scale > 0.0) {
            return Err(parse_err(ln_s, "weight scale must be positive and finite"));
        }
        let (ln_q, q_line) = lines
            .next()
            .ok_or_else(|| parse_err(ln, "missing quantized weights"))?;
        let qw = parse_int_line(q_line, 'q', fan_in * fan_out, ln_q)?;
        let (ln_b, b_line) = lines
            .next()
            .ok_or_else(|| parse_err(ln, "missing biases"))?;
        let b_vals = parse_float_line(b_line, 'b', fan_out, ln_b)?;

        layers.push(QuantDense::from_parts(
            fan_in, fan_out, w_scale, &qw, b_vals, act,
        ));
    }
    for pair in layers.windows(2) {
        if pair[0].fan_out() != pair[1].fan_in() {
            return Err(parse_err(0, "layer width mismatch"));
        }
    }
    Ok(QuantNetwork::from_layers(layers))
}

fn parse_int_line(
    line: &str,
    tag: char,
    expected: usize,
    ln: usize,
) -> Result<Vec<i16>, ModelIoError> {
    let rest = line
        .strip_prefix(tag)
        .ok_or_else(|| parse_err(ln, format!("expected `{tag} ...`")))?;
    let vals: Result<Vec<i16>, _> = rest.split_whitespace().map(str::parse).collect();
    let vals = vals.map_err(|e| parse_err(ln, format!("bad integer: {e}")))?;
    if vals.len() != expected {
        return Err(parse_err(
            ln,
            format!("expected {expected} values, found {}", vals.len()),
        ));
    }
    Ok(vals)
}

/// Writes a quantized network to a file.
pub fn save_quant_network(net: &QuantNetwork, path: impl AsRef<Path>) -> Result<(), ModelIoError> {
    std::fs::write(path, format_quant_network(net))?;
    Ok(())
}

/// Reads a quantized network from a file.
pub fn load_quant_network(path: impl AsRef<Path>) -> Result<QuantNetwork, ModelIoError> {
    let text = std::fs::read_to_string(path)?;
    parse_quant_network(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_net() -> Network {
        Network::builder(3, 11)
            .hidden(5, Activation::ReLU)
            .output(4)
            .build()
    }

    #[test]
    fn round_trip_preserves_network_exactly() {
        let net = sample_net();
        let text = format_network(&net);
        let parsed = parse_network(&text).unwrap();
        assert_eq!(parsed, net);
    }

    #[test]
    fn round_trip_preserves_predictions() {
        let net = Network::paper_topology(Activation::Logistic, 4);
        let parsed = parse_network(&format_network(&net)).unwrap();
        let features: Vec<f32> = (0..9).map(|i| i as f32 / 9.0).collect();
        assert_eq!(net.predict_one(&features), parsed.predict_one(&features));
    }

    #[test]
    fn file_round_trip() {
        let net = sample_net();
        let dir = std::env::temp_dir().join("ann_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.txt");
        save_network(&net, &path).unwrap();
        let loaded = load_network(&path).unwrap();
        assert_eq!(loaded, net);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = load_network("/nonexistent/definitely/missing.txt").unwrap_err();
        assert!(matches!(err, ModelIoError::Io(_)));
    }

    #[test]
    fn rejects_bad_header() {
        let err = parse_network("not-a-model\n").unwrap_err();
        assert!(err.to_string().contains("bad header"));
    }

    #[test]
    fn rejects_zero_layers() {
        let err = parse_network("ann-v1\nlayers 0\n").unwrap_err();
        assert!(err.to_string().contains("at least one"));
    }

    #[test]
    fn rejects_wrong_value_count() {
        let text = "ann-v1\nlayers 1\nlayer 2 2 relu\nw 1 2 3\nb 0 0\n";
        let err = parse_network(text).unwrap_err();
        assert!(err.to_string().contains("expected 4 values"));
    }

    #[test]
    fn rejects_bad_activation() {
        let text = "ann-v1\nlayers 1\nlayer 1 1 swish\nw 1\nb 0\n";
        let err = parse_network(text).unwrap_err();
        assert!(err.to_string().contains("bad activation"));
    }

    #[test]
    fn rejects_mismatched_layer_widths() {
        let text = "ann-v1\nlayers 2\nlayer 2 3 relu\nw 1 1 1 1 1 1\nb 0 0 0\nlayer 4 1 identity\nw 1 1 1 1\nb 0\n";
        let err = parse_network(text).unwrap_err();
        assert!(err.to_string().contains("width mismatch"));
    }

    #[test]
    fn rejects_truncated_input() {
        let err = parse_network("ann-v1\nlayers 1\nlayer 2 2 relu\n").unwrap_err();
        assert!(err.to_string().contains("missing weights"));
    }

    #[test]
    fn quant_round_trip_is_exact() {
        let net = Network::paper_topology(Activation::Logistic, 21);
        let q = QuantNetwork::from_network(&net);
        let text = format_quant_network(&q);
        let parsed = parse_quant_network(&text).unwrap();
        assert_eq!(parsed, q, "annq-v1 round trip must be bit-exact");
    }

    #[test]
    fn quant_rejects_bad_header_and_scale() {
        let err = parse_quant_network("ann-v1\n").unwrap_err();
        assert!(err.to_string().contains("bad header"));
        let text = "annq-v1\nlayers 1\nlayer 1 1 identity\ns 0\nq 5\nb 0\n";
        let err = parse_quant_network(text).unwrap_err();
        assert!(err.to_string().contains("positive and finite"));
    }

    #[test]
    fn quant_rejects_out_of_range_weight() {
        // 40000 overflows i16: a corrupt file must fail, not wrap.
        let text = "annq-v1\nlayers 1\nlayer 1 1 identity\ns 1e0\nq 40000\nb 0\n";
        let err = parse_quant_network(text).unwrap_err();
        assert!(err.to_string().contains("bad integer"));
    }

    #[test]
    fn extreme_magnitudes_survive_the_text_format() {
        let mut rng = crate::network::seeded_rng(0);
        let mut layer = Dense::new(2, 2, Activation::Identity, &mut rng);
        layer.w = Matrix::from_vec(2, 2, vec![1.0e-30, -1.0e30, 0.0, -0.0]);
        layer.b = vec![f32::MIN_POSITIVE, f32::MAX];
        let net = Network::from_layers(vec![layer]);
        let parsed = parse_network(&format_network(&net)).unwrap();
        assert_eq!(parsed, net);
    }
}
