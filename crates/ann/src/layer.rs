//! Dense (fully connected) layers.

use crate::activation::Activation;
use crate::matrix::Matrix;
use simrng::Rng;

/// A dense layer: `a = act(x · w + b)` with `w: [in, out]`, `b: [out]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Dense {
    /// Weight matrix, `[fan_in, fan_out]`.
    pub w: Matrix,
    /// Bias vector, `[fan_out]`.
    pub b: Vec<f32>,
    /// Activation applied element-wise to the affine output.
    pub act: Activation,
}

/// Gradients of one layer's parameters.
#[derive(Debug, Clone)]
pub struct DenseGrads {
    /// `dL/dw`, same shape as `w`.
    pub w: Matrix,
    /// `dL/db`, same shape as `b`.
    pub b: Vec<f32>,
}

impl Dense {
    /// Creates a layer with He/Xavier-style uniform initialization:
    /// weights in `±sqrt(6 / (fan_in + fan_out))`, biases zero.
    pub fn new(fan_in: usize, fan_out: usize, act: Activation, rng: &mut impl Rng) -> Self {
        assert!(
            fan_in > 0 && fan_out > 0,
            "layer dimensions must be positive"
        );
        let w = Matrix::from_fn(fan_in, fan_out, |_, _| {
            simrng::dist::xavier_uniform(rng, fan_in, fan_out)
        });
        Self {
            w,
            b: vec![0.0; fan_out],
            act,
        }
    }

    /// Input width.
    pub fn fan_in(&self) -> usize {
        self.w.rows()
    }

    /// Output width.
    pub fn fan_out(&self) -> usize {
        self.w.cols()
    }

    /// Forward pass for a batch `x: [batch, fan_in]` → `[batch, fan_out]`.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        debug_assert_eq!(x.cols(), self.fan_in());
        let mut out = x.matmul(&self.w);
        out.add_row_broadcast(&self.b);
        for i in 0..out.rows() {
            self.act.apply_slice(out.row_mut(i));
        }
        out
    }

    /// Forward pass into a reused output buffer via the branchless
    /// batched kernel [`Matrix::matmul_into`]. Allocation-free once
    /// `out` is warm, and bit-identical to [`Dense::forward`] row for
    /// row (finite weights — the training and quantization paths never
    /// produce anything else).
    pub fn forward_batch_into(&self, x: &Matrix, out: &mut Matrix) {
        debug_assert_eq!(x.cols(), self.fan_in());
        x.matmul_into(&self.w, out);
        out.add_row_broadcast(&self.b);
        for i in 0..out.rows() {
            self.act.apply_slice(out.row_mut(i));
        }
    }

    /// Backward pass.
    ///
    /// * `x` — the input that produced `a` (`[batch, fan_in]`);
    /// * `a` — the forward output (`[batch, fan_out]`);
    /// * `upstream` — `dL/da` (`[batch, fan_out]`).
    ///
    /// Returns the parameter gradients and `dL/dx` for the previous layer.
    pub fn backward(&self, x: &Matrix, a: &Matrix, upstream: &Matrix) -> (DenseGrads, Matrix) {
        debug_assert_eq!(upstream.rows(), x.rows());
        debug_assert_eq!(upstream.cols(), self.fan_out());
        // delta = upstream ⊙ act'(a)
        let mut delta = upstream.clone();
        if self.act != Activation::Identity {
            for i in 0..delta.rows() {
                let a_row = a.row(i);
                for (d, &y) in delta.row_mut(i).iter_mut().zip(a_row.iter()) {
                    *d *= self.act.derivative_from_output(y);
                }
            }
        }
        let grads = DenseGrads {
            w: x.t_matmul(&delta),
            b: delta.column_sums(),
        };
        let dx = delta.matmul_t(&self.w);
        (grads, dx)
    }

    /// Bytes of parameter storage, assuming the paper's costing of 16 bytes
    /// per neuron-parameter pair is replaced by exact f32 accounting.
    pub fn param_bytes(&self) -> usize {
        (self.w.rows() * self.w.cols() + self.b.len()) * std::mem::size_of::<f32>()
    }

    /// Number of floating-point multiplications one forward pass performs
    /// per input row (`fan_in × fan_out`, the paper's §IV-D cost model).
    pub fn forward_mults(&self) -> usize {
        self.fan_in() * self.fan_out()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> simrng::SimRng {
        simrng::SimRng::seed_from_u64(7)
    }

    #[test]
    fn forward_shape_and_bias() {
        let mut layer = Dense::new(3, 2, Activation::Identity, &mut rng());
        // Zero the weights: output must equal the bias.
        layer.w = Matrix::zeros(3, 2);
        layer.b = vec![0.5, -0.5];
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        let out = layer.forward(&x);
        assert_eq!(out.rows(), 1);
        assert_eq!(out.cols(), 2);
        assert_eq!(out.row(0), &[0.5, -0.5]);
    }

    #[test]
    fn forward_known_affine() {
        let mut layer = Dense::new(2, 1, Activation::Identity, &mut rng());
        layer.w = Matrix::from_rows(&[&[2.0], &[3.0]]);
        layer.b = vec![1.0];
        let x = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 0.0]]);
        let out = layer.forward(&x);
        assert_eq!(out.get(0, 0), 6.0);
        assert_eq!(out.get(1, 0), 5.0);
    }

    #[test]
    fn relu_forward_clamps() {
        let mut layer = Dense::new(1, 1, Activation::ReLU, &mut rng());
        layer.w = Matrix::from_rows(&[&[1.0]]);
        layer.b = vec![0.0];
        let out = layer.forward(&Matrix::from_rows(&[&[-5.0], &[5.0]]));
        assert_eq!(out.get(0, 0), 0.0);
        assert_eq!(out.get(1, 0), 5.0);
    }

    #[test]
    fn init_is_bounded_and_seeded() {
        let a = Dense::new(9, 64, Activation::ReLU, &mut rng());
        let b = Dense::new(9, 64, Activation::ReLU, &mut rng());
        assert_eq!(a, b, "same seed, same init");
        let limit = (6.0 / 73.0f32).sqrt();
        assert!(a.w.as_slice().iter().all(|&v| v.abs() <= limit));
        assert!(a.b.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn cost_model_accessors() {
        let layer = Dense::new(9, 64, Activation::ReLU, &mut rng());
        assert_eq!(layer.fan_in(), 9);
        assert_eq!(layer.fan_out(), 64);
        assert_eq!(layer.forward_mults(), 9 * 64);
        assert_eq!(layer.param_bytes(), (9 * 64 + 64) * 4);
    }

    /// Central finite-difference check of every parameter and input
    /// gradient through a scalar loss `sum(a)`.
    #[test]
    fn backward_matches_finite_difference() {
        for act in [Activation::Identity, Activation::Logistic, Activation::Tanh] {
            let mut r = rng();
            let layer = Dense::new(3, 2, act, &mut r);
            let x = Matrix::from_rows(&[&[0.3, -0.7, 0.5], &[0.9, 0.1, -0.2]]);
            let a = layer.forward(&x);
            let upstream = Matrix::from_fn(2, 2, |_, _| 1.0); // d(sum)/da = 1
            let (grads, dx) = layer.backward(&x, &a, &upstream);
            let loss = |l: &Dense, x: &Matrix| -> f32 { l.forward(x).as_slice().iter().sum() };
            let h = 1e-3f32;

            for i in 0..3 {
                for j in 0..2 {
                    let mut lp = layer.clone();
                    lp.w.set(i, j, lp.w.get(i, j) + h);
                    let mut lm = layer.clone();
                    lm.w.set(i, j, lm.w.get(i, j) - h);
                    let numeric = (loss(&lp, &x) - loss(&lm, &x)) / (2.0 * h);
                    assert!(
                        (numeric - grads.w.get(i, j)).abs() < 2e-2,
                        "{act}: dW[{i},{j}] numeric {numeric} vs {}",
                        grads.w.get(i, j)
                    );
                }
            }
            for j in 0..2 {
                let mut lp = layer.clone();
                lp.b[j] += h;
                let mut lm = layer.clone();
                lm.b[j] -= h;
                let numeric = (loss(&lp, &x) - loss(&lm, &x)) / (2.0 * h);
                assert!((numeric - grads.b[j]).abs() < 2e-2, "{act}: db[{j}]");
            }
            for i in 0..2 {
                for j in 0..3 {
                    let mut xp = x.clone();
                    xp.set(i, j, xp.get(i, j) + h);
                    let mut xm = x.clone();
                    xm.set(i, j, xm.get(i, j) - h);
                    let numeric = (loss(&layer, &xp) - loss(&layer, &xm)) / (2.0 * h);
                    assert!((numeric - dx.get(i, j)).abs() < 2e-2, "{act}: dx[{i},{j}]");
                }
            }
        }
    }
}
