//! First-order optimizers.
//!
//! The paper (§II-B, §V-B) trains its strategy model with four
//! configurations — SGD, SGD with momentum, and Adam with two activation
//! choices — and motivates Adam as the combination of AdaGrad and RMSProp.
//! All five algorithms are implemented so the Figure 4 / Table III sweep
//! and its natural ablations can run.
//!
//! Optimizers address parameter tensors by an opaque `slot` id (layer
//! index × 2 + {weights=0, bias=1}); per-slot state buffers are allocated
//! lazily on first use.

use std::collections::HashMap;

/// A first-order parameter update rule.
pub trait Optimizer {
    /// Applies one update: `params -= f(grads)` for the tensor identified
    /// by `slot`.
    fn update(&mut self, slot: usize, params: &mut [f32], grads: &[f32]);

    /// Human-readable name (used in experiment tables).
    fn name(&self) -> &'static str;
}

fn state_buf(map: &mut HashMap<usize, Vec<f32>>, slot: usize, len: usize) -> &mut [f32] {
    map.entry(slot).or_insert_with(|| vec![0.0; len])
}

/// Plain stochastic gradient descent: `p -= lr · g`.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate (the paper uses 0.2).
    pub lr: f32,
}

impl Sgd {
    /// SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Self { lr }
    }

    /// The paper's configuration (lr = 0.2).
    pub fn paper() -> Self {
        Self::new(0.2)
    }
}

impl Optimizer for Sgd {
    fn update(&mut self, _slot: usize, params: &mut [f32], grads: &[f32]) {
        debug_assert_eq!(params.len(), grads.len());
        for (p, &g) in params.iter_mut().zip(grads) {
            *p -= self.lr * g;
        }
    }

    fn name(&self) -> &'static str {
        "SGD"
    }
}

/// SGD with classical momentum: `v = μ·v + g; p -= lr·v`.
#[derive(Debug, Clone)]
pub struct Momentum {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (the paper uses 0.9).
    pub mu: f32,
    velocity: HashMap<usize, Vec<f32>>,
}

impl Momentum {
    /// Momentum SGD with given rate and coefficient.
    pub fn new(lr: f32, mu: f32) -> Self {
        Self {
            lr,
            mu,
            velocity: HashMap::new(),
        }
    }

    /// The paper's configuration (lr = 0.2, μ = 0.9).
    pub fn paper() -> Self {
        Self::new(0.2, 0.9)
    }
}

impl Optimizer for Momentum {
    fn update(&mut self, slot: usize, params: &mut [f32], grads: &[f32]) {
        debug_assert_eq!(params.len(), grads.len());
        let v = state_buf(&mut self.velocity, slot, params.len());
        for ((p, &g), v) in params.iter_mut().zip(grads).zip(v.iter_mut()) {
            *v = self.mu * *v + g;
            *p -= self.lr * *v;
        }
    }

    fn name(&self) -> &'static str {
        "SGD-momentum"
    }
}

/// AdaGrad: per-parameter rates shrinking with accumulated squared
/// gradients.
#[derive(Debug, Clone)]
pub struct AdaGrad {
    /// Base learning rate.
    pub lr: f32,
    /// Divide-by-zero guard.
    pub eps: f32,
    accum: HashMap<usize, Vec<f32>>,
}

impl AdaGrad {
    /// AdaGrad with the given base rate.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            eps: 1e-8,
            accum: HashMap::new(),
        }
    }
}

impl Optimizer for AdaGrad {
    fn update(&mut self, slot: usize, params: &mut [f32], grads: &[f32]) {
        debug_assert_eq!(params.len(), grads.len());
        let a = state_buf(&mut self.accum, slot, params.len());
        for ((p, &g), a) in params.iter_mut().zip(grads).zip(a.iter_mut()) {
            *a += g * g;
            *p -= self.lr * g / (a.sqrt() + self.eps);
        }
    }

    fn name(&self) -> &'static str {
        "AdaGrad"
    }
}

/// RMSProp: exponentially decayed squared-gradient normalization.
#[derive(Debug, Clone)]
pub struct RmsProp {
    /// Base learning rate.
    pub lr: f32,
    /// Decay of the squared-gradient average.
    pub rho: f32,
    /// Divide-by-zero guard.
    pub eps: f32,
    accum: HashMap<usize, Vec<f32>>,
}

impl RmsProp {
    /// RMSProp with the given rate and a 0.9 decay.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            rho: 0.9,
            eps: 1e-8,
            accum: HashMap::new(),
        }
    }
}

impl Optimizer for RmsProp {
    fn update(&mut self, slot: usize, params: &mut [f32], grads: &[f32]) {
        debug_assert_eq!(params.len(), grads.len());
        let a = state_buf(&mut self.accum, slot, params.len());
        for ((p, &g), a) in params.iter_mut().zip(grads).zip(a.iter_mut()) {
            *a = self.rho * *a + (1.0 - self.rho) * g * g;
            *p -= self.lr * g / (a.sqrt() + self.eps);
        }
    }

    fn name(&self) -> &'static str {
        "RMSProp"
    }
}

/// Adam (Kingma & Ba): bias-corrected first and second moment estimates.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Base learning rate (the paper uses 0.02).
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Divide-by-zero guard.
    pub eps: f32,
    m: HashMap<usize, Vec<f32>>,
    v: HashMap<usize, Vec<f32>>,
    t: HashMap<usize, u32>,
}

impl Adam {
    /// Adam with the given rate and the standard β₁ = 0.9, β₂ = 0.999.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: HashMap::new(),
            v: HashMap::new(),
            t: HashMap::new(),
        }
    }

    /// The paper's configuration (lr = 0.02).
    pub fn paper() -> Self {
        Self::new(0.02)
    }
}

impl Optimizer for Adam {
    fn update(&mut self, slot: usize, params: &mut [f32], grads: &[f32]) {
        debug_assert_eq!(params.len(), grads.len());
        let t = self.t.entry(slot).or_insert(0);
        *t += 1;
        let t = *t as i32;
        let bc1 = 1.0 - self.beta1.powi(t);
        let bc2 = 1.0 - self.beta2.powi(t);
        let m = state_buf(&mut self.m, slot, params.len());
        let v = self
            .v
            .entry(slot)
            .or_insert_with(|| vec![0.0; params.len()]);
        for (((p, &g), m), v) in params
            .iter_mut()
            .zip(grads)
            .zip(m.iter_mut())
            .zip(v.iter_mut())
        {
            *m = self.beta1 * *m + (1.0 - self.beta1) * g;
            *v = self.beta2 * *v + (1.0 - self.beta2) * g * g;
            let m_hat = *m / bc1;
            let v_hat = *v / bc2;
            *p -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    fn name(&self) -> &'static str {
        "Adam"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizes f(p) = Σ pᵢ² from a fixed start; every optimizer must
    /// reduce it substantially.
    fn run_quadratic(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let mut p = vec![1.0f32, -2.0, 0.5, 3.0];
        for _ in 0..steps {
            let g: Vec<f32> = p.iter().map(|&x| 2.0 * x).collect();
            opt.update(0, &mut p, &g);
        }
        p.iter().map(|&x| x * x).sum()
    }

    #[test]
    fn sgd_step_is_exact() {
        let mut opt = Sgd::new(0.1);
        let mut p = vec![1.0f32, 2.0];
        opt.update(0, &mut p, &[10.0, -10.0]);
        assert_eq!(p, vec![0.0, 3.0]);
    }

    #[test]
    fn all_optimizers_minimize_a_quadratic() {
        let start: f32 = 1.0 + 4.0 + 0.25 + 9.0;
        let cases: Vec<Box<dyn Optimizer>> = vec![
            Box::new(Sgd::new(0.05)),
            Box::new(Momentum::new(0.02, 0.9)),
            Box::new(AdaGrad::new(0.5)),
            Box::new(RmsProp::new(0.05)),
            Box::new(Adam::new(0.2)),
        ];
        for mut opt in cases {
            let end = run_quadratic(opt.as_mut(), 200);
            assert!(
                end < start * 0.01,
                "{} failed to minimize: {start} -> {end}",
                opt.name()
            );
        }
    }

    #[test]
    fn momentum_accelerates_past_plain_sgd_on_a_ravine() {
        // A poorly conditioned quadratic: f = 0.5*(100 x² + y²).
        let run = |opt: &mut dyn Optimizer| -> f32 {
            let mut p = vec![1.0f32, 1.0];
            for _ in 0..50 {
                let g = vec![100.0 * p[0], p[1]];
                opt.update(0, &mut p, &g);
            }
            0.5 * (100.0 * p[0] * p[0] + p[1] * p[1])
        };
        let mut sgd = Sgd::new(0.002);
        let mut mom = Momentum::new(0.002, 0.9);
        let f_sgd = run(&mut sgd);
        let f_mom = run(&mut mom);
        assert!(f_mom < f_sgd, "momentum {f_mom} should beat sgd {f_sgd}");
    }

    #[test]
    fn adam_bias_correction_makes_first_step_lr_sized() {
        let mut opt = Adam::new(0.1);
        let mut p = vec![0.0f32];
        opt.update(0, &mut p, &[3.0]);
        // With bias correction the first step is ≈ lr regardless of g scale.
        assert!((p[0] + 0.1).abs() < 1e-3, "first Adam step was {}", p[0]);
    }

    #[test]
    fn adagrad_rates_decay_monotonically() {
        let mut opt = AdaGrad::new(1.0);
        let mut p = vec![0.0f32];
        let mut steps = Vec::new();
        for _ in 0..5 {
            let before = p[0];
            opt.update(0, &mut p, &[1.0]);
            steps.push((before - p[0]).abs());
        }
        for w in steps.windows(2) {
            assert!(
                w[1] < w[0] + 1e-9,
                "AdaGrad step sizes must shrink: {steps:?}"
            );
        }
    }

    #[test]
    fn slots_have_independent_state() {
        let mut opt = Momentum::new(0.1, 0.9);
        let mut a = vec![0.0f32];
        let mut b = vec![0.0f32];
        opt.update(0, &mut a, &[1.0]);
        opt.update(0, &mut a, &[1.0]);
        // Slot 1 starts fresh: its first step must equal slot 0's first step.
        opt.update(1, &mut b, &[1.0]);
        assert!((b[0] + 0.1).abs() < 1e-6, "fresh slot took step {}", b[0]);
        assert!(a[0] < b[0], "slot 0 accumulated momentum");
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Sgd::paper().name(), "SGD");
        assert_eq!(Momentum::paper().name(), "SGD-momentum");
        assert_eq!(AdaGrad::new(0.1).name(), "AdaGrad");
        assert_eq!(RmsProp::new(0.1).name(), "RMSProp");
        assert_eq!(Adam::paper().name(), "Adam");
    }

    #[test]
    fn paper_hyperparameters() {
        assert_eq!(Sgd::paper().lr, 0.2);
        let m = Momentum::paper();
        assert_eq!((m.lr, m.mu), (0.2, 0.9));
        assert_eq!(Adam::paper().lr, 0.02);
    }
}
