//! Minibatch training loop.
//!
//! One *iteration* in the paper's Figure 4 sense is one epoch over the
//! (shuffled) training set; the curves record training loss and held-out
//! test accuracy per iteration, and Table III additionally records wall
//! training time, so [`TrainHistory`] captures all three.

use crate::data::Dataset;
use crate::metrics::accuracy;
use crate::network::Network;
use crate::optimizer::Optimizer;
use std::time::{Duration, Instant};

/// Per-iteration training record.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrainHistory {
    /// Mean training loss of each epoch.
    pub loss: Vec<f32>,
    /// Test-set accuracy after each epoch (empty when no test set given).
    pub test_accuracy: Vec<f32>,
    /// Wall-clock time spent inside `fit`.
    pub wall_time: Duration,
}

impl TrainHistory {
    /// Final training loss (NaN when never trained).
    pub fn final_loss(&self) -> f32 {
        self.loss.last().copied().unwrap_or(f32::NAN)
    }

    /// Final test accuracy (NaN when never evaluated).
    pub fn final_accuracy(&self) -> f32 {
        self.test_accuracy.last().copied().unwrap_or(f32::NAN)
    }
}

/// Epoch/batch configuration for [`Trainer::fit`].
#[derive(Debug, Clone)]
pub struct Trainer {
    /// Number of epochs ("iterations" in the paper).
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Seed for the per-epoch shuffles.
    pub seed: u64,
}

impl Trainer {
    /// A trainer with the given epoch count, batch size, and shuffle seed.
    pub fn new(epochs: usize, batch_size: usize, seed: u64) -> Self {
        Self {
            epochs,
            batch_size,
            seed,
        }
    }

    /// The paper's setting: 200 iterations; minibatches of 32.
    pub fn paper() -> Self {
        Self::new(200, 32, 0x55d0)
    }

    /// Trains `net` on `train`, evaluating on `test` after each epoch when
    /// provided. Returns the history.
    pub fn fit(
        &mut self,
        net: &mut Network,
        train: &Dataset,
        test: Option<&Dataset>,
        opt: &mut dyn Optimizer,
    ) -> TrainHistory {
        assert_eq!(
            train.feature_width(),
            net.input_width(),
            "dataset feature width must match the network input"
        );
        let start = Instant::now();
        let mut history = TrainHistory::default();
        let mut rng = simrng::SimRng::seed_from_u64(self.seed);

        for _epoch in 0..self.epochs {
            let shuffled = train.shuffled(&mut rng);
            let mut epoch_loss = 0.0f64;
            let mut batches = 0usize;
            for (x, labels) in shuffled.batches(self.batch_size) {
                let (loss, grads) = net.loss_and_grads(&x, labels);
                epoch_loss += loss as f64;
                batches += 1;
                for (li, g) in grads.iter().enumerate() {
                    let (w, b) = net.params_mut(li);
                    opt.update(li * 2, w.as_mut_slice(), g.w.as_slice());
                    opt.update(li * 2 + 1, b.as_mut_slice(), &g.b);
                }
            }
            history.loss.push(if batches == 0 {
                0.0
            } else {
                (epoch_loss / batches as f64) as f32
            });
            if let Some(test) = test {
                history.test_accuracy.push(accuracy(net, test));
            }
        }
        history.wall_time = start.elapsed();
        history
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::matrix::Matrix;
    use crate::optimizer::{Adam, Momentum, Sgd};

    /// Two well-separated Gaussian-ish blobs.
    fn blobs(n: usize) -> Dataset {
        let mut rows = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        let mut state = 12345u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (u32::MAX as f32)) - 0.5
        };
        for i in 0..n {
            let class = i % 2;
            let cx = if class == 0 { -1.0 } else { 1.0 };
            rows.push([cx + 0.3 * next(), cx + 0.3 * next()]);
            labels.push(class);
        }
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        Dataset::new(Matrix::from_rows(&refs), labels, 2).unwrap()
    }

    #[test]
    fn training_reduces_loss_and_reaches_high_accuracy() {
        let data = blobs(200);
        let (train, test) = data.split(0.7);
        let mut net = Network::builder(2, 5)
            .hidden(8, Activation::ReLU)
            .output(2)
            .build();
        let mut opt = Adam::new(0.05);
        let mut trainer = Trainer::new(30, 16, 1);
        let history = trainer.fit(&mut net, &train, Some(&test), &mut opt);
        assert_eq!(history.loss.len(), 30);
        assert_eq!(history.test_accuracy.len(), 30);
        assert!(
            history.final_loss() < history.loss[0] * 0.5,
            "{:?}",
            history.loss
        );
        assert!(history.final_accuracy() > 0.95);
        assert!(history.wall_time > Duration::ZERO);
    }

    #[test]
    fn sgd_and_momentum_also_learn_blobs() {
        let data = blobs(200);
        let (train, test) = data.split(0.7);
        for opt in [
            &mut Sgd::new(0.2) as &mut dyn Optimizer,
            &mut Momentum::new(0.2, 0.9),
        ] {
            let mut net = Network::builder(2, 5)
                .hidden(8, Activation::Logistic)
                .output(2)
                .build();
            let mut trainer = Trainer::new(40, 16, 1);
            let history = trainer.fit(&mut net, &train, Some(&test), opt);
            assert!(
                history.final_accuracy() > 0.9,
                "{} only reached {}",
                opt.name(),
                history.final_accuracy()
            );
        }
    }

    #[test]
    fn fit_without_test_set_skips_accuracy() {
        let data = blobs(40);
        let mut net = Network::builder(2, 5)
            .hidden(4, Activation::Tanh)
            .output(2)
            .build();
        let mut opt = Sgd::new(0.1);
        let history = Trainer::new(3, 8, 1).fit(&mut net, &data, None, &mut opt);
        assert_eq!(history.loss.len(), 3);
        assert!(history.test_accuracy.is_empty());
        assert!(history.final_accuracy().is_nan());
    }

    #[test]
    fn empty_history_defaults() {
        let h = TrainHistory::default();
        assert!(h.final_loss().is_nan());
        assert!(h.final_accuracy().is_nan());
    }

    #[test]
    fn training_is_deterministic_given_seeds() {
        let data = blobs(80);
        let run = || {
            let mut net = Network::builder(2, 5)
                .hidden(4, Activation::ReLU)
                .output(2)
                .build();
            let mut opt = Adam::new(0.02);
            let h = Trainer::new(5, 8, 7).fit(&mut net, &data, None, &mut opt);
            (net, h.loss)
        };
        let (na, la) = run();
        let (nb, lb) = run();
        assert_eq!(na, nb);
        assert_eq!(la, lb);
    }

    #[test]
    #[should_panic(expected = "feature width")]
    fn fit_rejects_mismatched_width() {
        let data = blobs(10);
        let mut net = Network::builder(3, 5)
            .hidden(4, Activation::ReLU)
            .output(2)
            .build();
        let mut opt = Sgd::new(0.1);
        let _ = Trainer::new(1, 4, 1).fit(&mut net, &data, None, &mut opt);
    }
}
