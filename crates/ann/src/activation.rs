//! Activation functions.
//!
//! The paper compares ReLU and logistic hidden activations (its
//! "Adam-ReLU" vs "Adam-logistic" configurations); tanh and identity are
//! included for completeness (identity is what the output layer uses —
//! the softmax lives in the loss).

/// Element-wise non-linearity applied by a dense layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Activation {
    /// `max(0, x)`.
    ReLU,
    /// `1 / (1 + e^-x)` (the paper's "logistic").
    Logistic,
    /// Hyperbolic tangent.
    Tanh,
    /// Pass-through (used for logit outputs).
    Identity,
}

impl Activation {
    /// Applies the function to one value.
    #[inline]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::ReLU => x.max(0.0),
            Activation::Logistic => 1.0 / (1.0 + (-x).exp()),
            Activation::Tanh => x.tanh(),
            Activation::Identity => x,
        }
    }

    /// Derivative expressed in terms of the **output** `y = f(x)`.
    ///
    /// All four functions here admit this form, which lets backprop avoid
    /// caching pre-activations.
    #[inline]
    pub fn derivative_from_output(self, y: f32) -> f32 {
        match self {
            Activation::ReLU => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Logistic => y * (1.0 - y),
            Activation::Tanh => 1.0 - y * y,
            Activation::Identity => 1.0,
        }
    }

    /// Applies the function in place to a buffer.
    pub fn apply_slice(self, xs: &mut [f32]) {
        if self == Activation::Identity {
            return;
        }
        for x in xs {
            *x = self.apply(*x);
        }
    }

    /// Stable name used by the model text format.
    pub fn name(self) -> &'static str {
        match self {
            Activation::ReLU => "relu",
            Activation::Logistic => "logistic",
            Activation::Tanh => "tanh",
            Activation::Identity => "identity",
        }
    }

    /// Parses a name produced by [`Activation::name`].
    pub fn from_name(s: &str) -> Option<Self> {
        match s {
            "relu" => Some(Activation::ReLU),
            "logistic" => Some(Activation::Logistic),
            "tanh" => Some(Activation::Tanh),
            "identity" => Some(Activation::Identity),
            _ => None,
        }
    }
}

impl std::fmt::Display for Activation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrng::{Rng, SimRng};

    const ALL: [Activation; 4] = [
        Activation::ReLU,
        Activation::Logistic,
        Activation::Tanh,
        Activation::Identity,
    ];

    #[test]
    fn relu_clamps_negatives() {
        assert_eq!(Activation::ReLU.apply(-2.0), 0.0);
        assert_eq!(Activation::ReLU.apply(3.0), 3.0);
    }

    #[test]
    fn logistic_range_and_midpoint() {
        let f = Activation::Logistic;
        assert!((f.apply(0.0) - 0.5).abs() < 1e-6);
        assert!(f.apply(10.0) > 0.999);
        assert!(f.apply(-10.0) < 0.001);
    }

    #[test]
    fn tanh_is_odd() {
        let f = Activation::Tanh;
        assert!((f.apply(1.5) + f.apply(-1.5)).abs() < 1e-6);
    }

    #[test]
    fn identity_is_noop() {
        let mut xs = [1.0f32, -2.0, 3.0];
        Activation::Identity.apply_slice(&mut xs);
        assert_eq!(xs, [1.0, -2.0, 3.0]);
    }

    #[test]
    fn apply_slice_matches_apply() {
        for act in ALL {
            let inputs = [-2.0f32, -0.5, 0.0, 0.5, 2.0];
            let mut buf = inputs;
            act.apply_slice(&mut buf);
            for (i, &x) in inputs.iter().enumerate() {
                assert_eq!(buf[i], act.apply(x), "{act} mismatch at {x}");
            }
        }
    }

    #[test]
    fn names_round_trip() {
        for act in ALL {
            assert_eq!(Activation::from_name(act.name()), Some(act));
            assert_eq!(act.to_string(), act.name());
        }
        assert_eq!(Activation::from_name("bogus"), None);
    }

    /// Numeric derivative matches derivative_from_output at smooth
    /// points, over a seeded sweep of inputs.
    #[test]
    fn derivative_matches_finite_difference() {
        let mut rng = SimRng::seed_from_u64(101);
        for _ in 0..512 {
            let x: f32 = rng.gen_range(-3.0f32..3.0);
            let h = 1e-3f32;
            for act in [Activation::Logistic, Activation::Tanh, Activation::Identity] {
                let y = act.apply(x);
                let numeric = (act.apply(x + h) - act.apply(x - h)) / (2.0 * h);
                let analytic = act.derivative_from_output(y);
                assert!(
                    (numeric - analytic).abs() < 5e-3,
                    "{act} at {x}: {numeric} vs {analytic}"
                );
            }
            // ReLU away from the kink.
            if x.abs() > 0.01 {
                let act = Activation::ReLU;
                let y = act.apply(x);
                let numeric = (act.apply(x + h) - act.apply(x - h)) / (2.0 * h);
                assert!((numeric - act.derivative_from_output(y)).abs() < 5e-3);
            }
        }
    }

    /// Logistic output always lies in (0, 1); tanh in (-1, 1).
    #[test]
    fn bounded_outputs() {
        let mut rng = SimRng::seed_from_u64(102);
        for _ in 0..2048 {
            let x: f32 = rng.gen_range(-50.0f32..50.0);
            let l = Activation::Logistic.apply(x);
            assert!((0.0..=1.0).contains(&l));
            let t = Activation::Tanh.apply(x);
            assert!((-1.0..=1.0).contains(&t));
        }
    }
}
