//! Evaluation metrics: accuracy and confusion matrices.

use crate::data::Dataset;
use crate::network::Network;

/// Fraction of dataset rows whose arg-max prediction matches the label.
/// Returns 0 for an empty dataset.
pub fn accuracy(net: &Network, data: &Dataset) -> f32 {
    if data.is_empty() {
        return 0.0;
    }
    let preds = net.predict(data.features());
    let correct = preds
        .iter()
        .zip(data.labels())
        .filter(|(p, l)| p == l)
        .count();
    correct as f32 / data.len() as f32
}

/// `classes × classes` confusion matrix; `confusion[true][pred]` counts.
pub fn confusion(net: &Network, data: &Dataset) -> Vec<Vec<u32>> {
    let mut m = vec![vec![0u32; data.classes()]; data.classes()];
    let preds = net.predict(data.features());
    for (&p, &t) in preds.iter().zip(data.labels()) {
        m[t][p] += 1;
    }
    m
}

/// Top-k accuracy: the label appears among the k highest logits.
pub fn top_k_accuracy(net: &Network, data: &Dataset, k: usize) -> f32 {
    if data.is_empty() || k == 0 {
        return 0.0;
    }
    let logits = net.forward(data.features());
    let mut hits = 0usize;
    for (i, &label) in data.labels().iter().enumerate() {
        let row = logits.row(i);
        let target = row[label];
        let better = row.iter().filter(|&&v| v > target).count();
        if better < k {
            hits += 1;
        }
    }
    hits as f32 / data.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::layer::Dense;
    use crate::matrix::Matrix;
    use crate::network::seeded_rng;

    /// A hand-built "network" that copies input feature j to logit j.
    fn identity_net(width: usize) -> Network {
        let mut rng = seeded_rng(0);
        let mut layer = Dense::new(width, width, Activation::Identity, &mut rng);
        layer.w = Matrix::from_fn(width, width, |i, j| if i == j { 1.0 } else { 0.0 });
        layer.b = vec![0.0; width];
        Network::from_layers(vec![layer])
    }

    fn one_hot_dataset() -> Dataset {
        // Row i is the one-hot vector of class i → identity net predicts i.
        let x = Matrix::from_fn(3, 3, |i, j| if i == j { 1.0 } else { 0.0 });
        Dataset::new(x, vec![0, 1, 2], 3).unwrap()
    }

    #[test]
    fn accuracy_perfect_and_broken() {
        let net = identity_net(3);
        let data = one_hot_dataset();
        assert_eq!(accuracy(&net, &data), 1.0);
        // Mislabel everything: accuracy 0.
        let bad = Dataset::new(data.features().clone(), vec![1, 2, 0], 3).unwrap();
        assert_eq!(accuracy(&net, &bad), 0.0);
    }

    #[test]
    fn accuracy_empty_dataset_is_zero() {
        let net = identity_net(2);
        let data = Dataset::new(Matrix::zeros(0, 2), vec![], 2).unwrap();
        assert_eq!(accuracy(&net, &data), 0.0);
    }

    #[test]
    fn confusion_diagonal_when_perfect() {
        let net = identity_net(3);
        let data = one_hot_dataset();
        let m = confusion(&net, &data);
        for (t, row) in m.iter().enumerate() {
            for (p, &count) in row.iter().enumerate() {
                assert_eq!(count, u32::from(t == p));
            }
        }
    }

    #[test]
    fn confusion_counts_misclassifications() {
        let net = identity_net(2);
        // Feature argmax 1 but label 0 for both rows.
        let x = Matrix::from_rows(&[&[0.0, 1.0], &[0.1, 0.9]]);
        let data = Dataset::new(x, vec![0, 0], 2).unwrap();
        let m = confusion(&net, &data);
        assert_eq!(m[0][1], 2);
        assert_eq!(m[0][0], 0);
    }

    #[test]
    fn top_k_expands_hits() {
        let net = identity_net(4);
        // argmax is class 3 but the label is the runner-up class 2.
        let x = Matrix::from_rows(&[&[0.0, 0.1, 0.8, 0.9]]);
        let data = Dataset::new(x, vec![2], 4).unwrap();
        assert_eq!(top_k_accuracy(&net, &data, 1), 0.0);
        assert_eq!(top_k_accuracy(&net, &data, 2), 1.0);
        assert_eq!(top_k_accuracy(&net, &data, 0), 0.0);
    }
}
