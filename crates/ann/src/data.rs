//! Labelled datasets: storage, shuffling, splitting, batching.

use crate::matrix::Matrix;
use simrng::Rng;
use simrng::SliceRandom;

/// A classification dataset: feature matrix plus integer labels.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    x: Matrix,
    labels: Vec<usize>,
    classes: usize,
}

/// Errors from [`Dataset::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// Row count and label count differ.
    LengthMismatch {
        /// Feature rows.
        rows: usize,
        /// Labels provided.
        labels: usize,
    },
    /// A label is `>= classes`.
    LabelOutOfRange {
        /// Offending row.
        index: usize,
        /// The label value.
        label: usize,
    },
}

impl std::fmt::Display for DatasetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatasetError::LengthMismatch { rows, labels } => {
                write!(f, "{rows} feature rows but {labels} labels")
            }
            DatasetError::LabelOutOfRange { index, label } => {
                write!(f, "label {label} at row {index} out of range")
            }
        }
    }
}

impl std::error::Error for DatasetError {}

impl Dataset {
    /// Builds a dataset; validates label range and lengths.
    pub fn new(x: Matrix, labels: Vec<usize>, classes: usize) -> Result<Self, DatasetError> {
        if x.rows() != labels.len() {
            return Err(DatasetError::LengthMismatch {
                rows: x.rows(),
                labels: labels.len(),
            });
        }
        for (index, &label) in labels.iter().enumerate() {
            if label >= classes {
                return Err(DatasetError::LabelOutOfRange { index, label });
            }
        }
        Ok(Self { x, labels, classes })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature width.
    pub fn feature_width(&self) -> usize {
        self.x.cols()
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// The feature matrix.
    pub fn features(&self) -> &Matrix {
        &self.x
    }

    /// The labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Returns a row-shuffled copy using the given RNG.
    pub fn shuffled(&self, rng: &mut impl Rng) -> Dataset {
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.shuffle(rng);
        self.subset(&order)
    }

    /// Selects rows by index into a new dataset.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            x: self.x.gather_rows(indices),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            classes: self.classes,
        }
    }

    /// Splits into `(front, back)` at `frac` (e.g. 0.7 gives the paper's
    /// 7:3 train/test split). The split is positional; shuffle first.
    pub fn split(&self, frac: f64) -> (Dataset, Dataset) {
        let cut = ((self.len() as f64) * frac.clamp(0.0, 1.0)).round() as usize;
        let front: Vec<usize> = (0..cut).collect();
        let back: Vec<usize> = (cut..self.len()).collect();
        (self.subset(&front), self.subset(&back))
    }

    /// Iterates over `(features, labels)` minibatches of at most
    /// `batch_size` rows, in order.
    pub fn batches(&self, batch_size: usize) -> impl Iterator<Item = (Matrix, &[usize])> + '_ {
        let batch_size = batch_size.max(1);
        (0..self.len()).step_by(batch_size).map(move |start| {
            let end = (start + batch_size).min(self.len());
            let idx: Vec<usize> = (start..end).collect();
            (self.x.gather_rows(&idx), &self.labels[start..end])
        })
    }

    /// Per-class sample counts.
    pub fn class_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.classes];
        for &l in &self.labels {
            hist[l] += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        let x = Matrix::from_fn(10, 3, |i, j| (i * 3 + j) as f32);
        let labels = (0..10).map(|i| i % 4).collect();
        Dataset::new(x, labels, 4).unwrap()
    }

    #[test]
    fn new_validates_lengths() {
        let x = Matrix::zeros(3, 2);
        assert_eq!(
            Dataset::new(x, vec![0, 1], 2).unwrap_err(),
            DatasetError::LengthMismatch { rows: 3, labels: 2 }
        );
    }

    #[test]
    fn new_validates_label_range() {
        let x = Matrix::zeros(2, 2);
        assert_eq!(
            Dataset::new(x, vec![0, 5], 2).unwrap_err(),
            DatasetError::LabelOutOfRange { index: 1, label: 5 }
        );
    }

    #[test]
    fn accessors() {
        let d = sample();
        assert_eq!(d.len(), 10);
        assert!(!d.is_empty());
        assert_eq!(d.feature_width(), 3);
        assert_eq!(d.classes(), 4);
        assert_eq!(d.class_histogram(), vec![3, 3, 2, 2]);
    }

    #[test]
    fn split_respects_fraction() {
        let d = sample();
        let (train, test) = d.split(0.7);
        assert_eq!(train.len(), 7);
        assert_eq!(test.len(), 3);
        assert_eq!(train.labels()[0], d.labels()[0]);
        assert_eq!(test.labels()[0], d.labels()[7]);
    }

    #[test]
    fn split_extremes() {
        let d = sample();
        let (a, b) = d.split(0.0);
        assert_eq!((a.len(), b.len()), (0, 10));
        let (a, b) = d.split(1.5);
        assert_eq!((a.len(), b.len()), (10, 0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let d = sample();
        let mut rng = simrng::SimRng::seed_from_u64(3);
        let s = d.shuffled(&mut rng);
        assert_eq!(s.len(), d.len());
        let mut a = s.class_histogram();
        let mut b = d.class_histogram();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        // Feature rows must follow their labels.
        for i in 0..s.len() {
            let row = s.features().row(i);
            let orig_index = (row[0] as usize) / 3;
            assert_eq!(s.labels()[i], d.labels()[orig_index]);
        }
    }

    #[test]
    fn shuffle_with_same_seed_is_deterministic() {
        let d = sample();
        let mut r1 = simrng::SimRng::seed_from_u64(9);
        let mut r2 = simrng::SimRng::seed_from_u64(9);
        assert_eq!(d.shuffled(&mut r1), d.shuffled(&mut r2));
    }

    #[test]
    fn batches_cover_everything_in_order() {
        let d = sample();
        let mut seen = 0;
        for (x, labels) in d.batches(4) {
            assert_eq!(x.rows(), labels.len());
            assert!(x.rows() <= 4);
            for (i, &l) in labels.iter().enumerate() {
                assert_eq!(l, d.labels()[seen + i]);
            }
            seen += labels.len();
        }
        assert_eq!(seen, 10);
    }

    #[test]
    fn batch_size_zero_is_clamped() {
        let d = sample();
        assert_eq!(d.batches(0).count(), 10);
    }

    #[test]
    fn error_display() {
        let e = DatasetError::LengthMismatch { rows: 1, labels: 2 };
        assert!(e.to_string().contains("1"));
        let e = DatasetError::LabelOutOfRange { index: 0, label: 9 };
        assert!(e.to_string().contains("9"));
    }
}
