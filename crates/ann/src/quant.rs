//! Fixed-point (i16) inference mode.
//!
//! [`QuantNetwork`] mirrors a trained f32 [`Network`] with 16-bit
//! integer weights and per-layer scales, hand-rolled on `std` integer
//! arithmetic (no external numerics — the workspace's zero-dependency
//! policy). It exists for the decision hot path: the keeper evaluates
//! the same 9→64→42 model thousands of times per fleet window, and the
//! integer kernel both halves the weight footprint and keeps the whole
//! model in cache.
//!
//! # Quantization scheme
//!
//! * **Weights** — per-layer symmetric: `sw = max|w| / 32767`,
//!   `qw = round(w / sw)` clamped to `±32767`. An all-zero layer uses
//!   `sw = 1` so the scheme never divides by zero.
//! * **Activations** — per-*row* dynamic: each input row is scaled by
//!   `sx = max|x| / 32767` at inference time, so batching rows together
//!   cannot change any row's result — batched and row-at-a-time
//!   quantized inference are bit-identical by construction.
//! * **Accumulation** — `i16 × i16` products are widened to `i32` and
//!   summed in `i64` (a fan-in of 64 at full scale is ≈ 2³⁶, past `i32`
//!   but nowhere near `i64` limits), then dequantized once per output:
//!   `y = (acc as f32) · (sx · sw) + bias`, followed by the layer's f32
//!   activation. Biases stay in f32 — they are `fan_out` adds, not the
//!   `fan_in × fan_out` multiply bulk.
//!
//! # When arg-max equivalence is guaranteed
//!
//! Rounding inputs and weights to 15-bit grids perturbs each logit by a
//! bounded amount. If for some input the f32 logit row has error bound
//! `d` (see DESIGN.md for the derivation; empirically ~1e-3 of the
//! logit scale for the paper topology), any class whose f32 logit leads
//! the runner-up by more than `2d` keeps its arg-max under
//! quantization. Ties and sub-`2d` gaps may legitimately flip; the
//! equivalence battery in `crates/ann/tests` checks both the exact
//! corpus (realistic feature vectors, where gaps are wide) and the
//! gap-conditioned property over random networks.

use crate::activation::Activation;
use crate::loss::softmax_rows;
use crate::matrix::Matrix;
use crate::network::Network;

/// Largest quantized magnitude: `i16::MAX`, symmetric around zero.
pub const QUANT_MAX: i32 = i16::MAX as i32;

/// One dense layer with i16 weights and a per-layer scale.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantDense {
    fan_in: usize,
    fan_out: usize,
    /// Weights stored row-major (`qw[kk * fan_out + j]`), matching the
    /// k-outer/j-inner kernel: each input element broadcasts against a
    /// contiguous weight row, accumulating into independent output
    /// lanes. Integer accumulation is exact in any order, so the layout
    /// is purely a throughput choice.
    qw: Vec<i16>,
    w_scale: f32,
    b: Vec<f32>,
    act: Activation,
}

impl QuantDense {
    /// Quantizes an f32 layer: per-layer symmetric weight scale,
    /// round-to-nearest, biases kept in f32.
    pub fn from_dense(layer: &crate::layer::Dense) -> Self {
        let (fan_in, fan_out) = (layer.fan_in(), layer.fan_out());
        let max_abs = layer
            .w
            .as_slice()
            .iter()
            .fold(0.0f32, |m, &v| m.max(v.abs()));
        let w_scale = if max_abs == 0.0 {
            1.0
        } else {
            max_abs / QUANT_MAX as f32
        };
        let qw = layer
            .w
            .as_slice()
            .iter()
            .map(|&w| quantize(w, w_scale))
            .collect();
        Self {
            fan_in,
            fan_out,
            qw,
            w_scale,
            b: layer.b.clone(),
            act: layer.act,
        }
    }

    /// Reassembles a layer from its serialized parts (`qw` row-major,
    /// as the `annq-v1` text format stores it).
    ///
    /// # Panics
    ///
    /// Panics if `qw.len() != fan_in * fan_out` or `b.len() != fan_out`.
    pub fn from_parts(
        fan_in: usize,
        fan_out: usize,
        w_scale: f32,
        qw: &[i16],
        b: Vec<f32>,
        act: Activation,
    ) -> Self {
        assert_eq!(qw.len(), fan_in * fan_out, "quant weight length mismatch");
        assert_eq!(b.len(), fan_out, "bias length mismatch");
        Self {
            fan_in,
            fan_out,
            qw: qw.to_vec(),
            w_scale,
            b,
            act,
        }
    }

    /// Input width.
    pub fn fan_in(&self) -> usize {
        self.fan_in
    }

    /// Output width.
    pub fn fan_out(&self) -> usize {
        self.fan_out
    }

    /// Per-layer weight scale (`max|w| / 32767`).
    pub fn w_scale(&self) -> f32 {
        self.w_scale
    }

    /// Quantized weight at `(kk, j)` in the original row-major layout.
    pub fn qw(&self, kk: usize, j: usize) -> i16 {
        self.qw[kk * self.fan_out + j]
    }

    /// Bias vector (kept in f32).
    pub fn bias(&self) -> &[f32] {
        &self.b
    }

    /// Activation applied to the dequantized affine output.
    pub fn activation(&self) -> Activation {
        self.act
    }

    /// Bytes of parameter storage (i16 weights + f32 scale and biases).
    pub fn param_bytes(&self) -> usize {
        self.qw.len() * std::mem::size_of::<i16>()
            + std::mem::size_of::<f32>()
            + self.b.len() * std::mem::size_of::<f32>()
    }

    /// Forward pass for a batch, writing into `out` through the scratch
    /// row-quantization and accumulator buffers. Each row is handled
    /// independently (its own dynamic scale), so batching never changes
    /// a row's output. The reduction is k-outer/j-inner: every quantized
    /// input element broadcasts against its contiguous weight row into
    /// `fan_out` independent `i64` lanes — exact integer sums, so the
    /// loop order is free and the lanes carry no dependency chain.
    fn forward_into(&self, x: &Matrix, qx: &mut Vec<i16>, acc: &mut Vec<i64>, out: &mut Matrix) {
        debug_assert_eq!(x.cols(), self.fan_in);
        let (rows, k, n) = (x.rows(), self.fan_in, self.fan_out);
        qx.resize(k, 0);
        acc.resize(n, 0);
        out.resize(rows, n);
        for i in 0..rows {
            let x_row = x.row(i);
            let max_abs = x_row.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            let out_row = out.row_mut(i);
            if max_abs == 0.0 {
                // A zero row contributes nothing: output is the bias.
                for (o, &b) in out_row.iter_mut().zip(self.b.iter()) {
                    *o = self.act.apply(b);
                }
                continue;
            }
            let sx = max_abs / QUANT_MAX as f32;
            for (q, &v) in qx.iter_mut().zip(x_row.iter()) {
                *q = quantize(v, sx);
            }
            acc.fill(0);
            for (kk, &q) in qx.iter().enumerate() {
                let q = q as i32;
                let w_row = &self.qw[kk * n..(kk + 1) * n];
                for (a, &w) in acc.iter_mut().zip(w_row) {
                    *a += (q * w as i32) as i64;
                }
            }
            let dequant = sx * self.w_scale;
            for ((o, &a), &b) in out_row.iter_mut().zip(acc.iter()).zip(self.b.iter()) {
                *o = self.act.apply(a as f32 * dequant + b);
            }
        }
    }
}

#[inline]
fn quantize(v: f32, scale: f32) -> i16 {
    (v / scale)
        .round()
        .clamp(-(QUANT_MAX as f32), QUANT_MAX as f32) as i16
}

/// Reusable buffers for [`QuantNetwork`] inference: the row
/// quantization buffer, the integer accumulator row, and two ping-pong
/// activation matrices. Zero allocations once warm.
#[derive(Debug)]
pub struct QuantScratch {
    qx: Vec<i16>,
    acc: Vec<i64>,
    ping: Matrix,
    pong: Matrix,
}

impl Default for QuantScratch {
    fn default() -> Self {
        Self {
            qx: Vec::new(),
            acc: Vec::new(),
            ping: Matrix::zeros(0, 0),
            pong: Matrix::zeros(0, 0),
        }
    }
}

impl QuantScratch {
    /// An empty scratch; buffers grow to fit on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A quantized mirror of a trained [`Network`], exposing the same
/// prediction API shapes (batch logits, batch arg-max, single-vector
/// arg-max).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantNetwork {
    layers: Vec<QuantDense>,
}

impl QuantNetwork {
    /// Quantizes every layer of a trained network.
    pub fn from_network(net: &Network) -> Self {
        Self {
            layers: net.layers().iter().map(QuantDense::from_dense).collect(),
        }
    }

    /// Constructs directly from layers (used by [`crate::io`]).
    ///
    /// # Panics
    ///
    /// Panics if consecutive layers have mismatched widths or no layers
    /// are given.
    pub fn from_layers(layers: Vec<QuantDense>) -> Self {
        assert!(!layers.is_empty(), "a network needs at least one layer");
        for pair in layers.windows(2) {
            assert_eq!(pair[0].fan_out(), pair[1].fan_in(), "layer width mismatch");
        }
        Self { layers }
    }

    /// The layers, input to output.
    pub fn layers(&self) -> &[QuantDense] {
        &self.layers
    }

    /// Input feature count.
    pub fn input_width(&self) -> usize {
        self.layers[0].fan_in()
    }

    /// Output class count.
    pub fn output_width(&self) -> usize {
        self.layers.last().expect("non-empty").fan_out()
    }

    /// Total parameter bytes — roughly half the f32 network's.
    pub fn param_bytes(&self) -> usize {
        self.layers.iter().map(QuantDense::param_bytes).sum()
    }

    /// Batched forward pass returning the dequantized logits
    /// `[batch, classes]` as a borrow of the scratch.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols()` differs from the input width.
    pub fn forward_batch_into<'s>(&self, x: &Matrix, scratch: &'s mut QuantScratch) -> &'s Matrix {
        assert_eq!(x.cols(), self.input_width(), "feature width mismatch");
        obs::span!("ann_quant_forward");
        obs::counter_add!("ann.quant_rows", x.rows() as u64);
        self.layers[0].forward_into(x, &mut scratch.qx, &mut scratch.acc, &mut scratch.ping);
        for (idx, layer) in self.layers.iter().enumerate().skip(1) {
            if idx % 2 == 1 {
                layer.forward_into(
                    &scratch.ping,
                    &mut scratch.qx,
                    &mut scratch.acc,
                    &mut scratch.pong,
                );
            } else {
                layer.forward_into(
                    &scratch.pong,
                    &mut scratch.qx,
                    &mut scratch.acc,
                    &mut scratch.ping,
                );
            }
        }
        if (self.layers.len() - 1) % 2 == 1 {
            &scratch.pong
        } else {
            &scratch.ping
        }
    }

    /// Batched arg-max prediction into a reused output vector. Ties
    /// resolve to the highest index, exactly like [`Network::predict`].
    pub fn predict_batch_into(&self, x: &Matrix, scratch: &mut QuantScratch, out: &mut Vec<usize>) {
        out.clear();
        let logits = self.forward_batch_into(x, scratch);
        out.reserve(logits.rows());
        for i in 0..logits.rows() {
            let class = logits
                .row(i)
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                .map(|(j, _)| j)
                .expect("non-empty row");
            out.push(class);
        }
    }

    /// Batched arg-max prediction, allocating the result vector.
    pub fn predict_batch(&self, x: &Matrix, scratch: &mut QuantScratch) -> Vec<usize> {
        let mut out = Vec::new();
        self.predict_batch_into(x, scratch, &mut out);
        out
    }

    /// Predicts the class of a single feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the input width.
    pub fn predict_one(&self, features: &[f32]) -> usize {
        assert_eq!(features.len(), self.input_width(), "feature width mismatch");
        let x = Matrix::from_rows(&[features]);
        let mut scratch = QuantScratch::new();
        self.predict_batch(&x, &mut scratch)[0]
    }

    /// Class probabilities (softmax of the dequantized logits).
    pub fn predict_proba(&self, x: &Matrix) -> Matrix {
        let mut scratch = QuantScratch::new();
        let mut logits = self.forward_batch_into(x, &mut scratch).clone();
        softmax_rows(&mut logits);
        logits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrng::Rng;

    fn paper_net(seed: u64) -> Network {
        Network::paper_topology(Activation::Logistic, seed)
    }

    #[test]
    fn quantization_round_trips_through_parts() {
        let net = paper_net(11);
        let q = QuantNetwork::from_network(&net);
        for layer in q.layers() {
            let (fi, fo) = (layer.fan_in(), layer.fan_out());
            let mut row_major = vec![0i16; fi * fo];
            for kk in 0..fi {
                for j in 0..fo {
                    row_major[kk * fo + j] = layer.qw(kk, j);
                }
            }
            let rebuilt = QuantDense::from_parts(
                fi,
                fo,
                layer.w_scale(),
                &row_major,
                layer.bias().to_vec(),
                layer.activation(),
            );
            assert_eq!(&rebuilt, layer);
        }
    }

    #[test]
    fn zero_input_row_yields_activated_bias() {
        let net = paper_net(3);
        let q = QuantNetwork::from_network(&net);
        let x = Matrix::zeros(1, 9);
        let mut scratch = QuantScratch::new();
        let logits = q.forward_batch_into(&x, &mut scratch);
        // The f32 network on a zero row also reduces to propagated
        // biases; the two paths must agree closely.
        let reference = net.forward(&x);
        for (a, b) in logits.as_slice().iter().zip(reference.as_slice()) {
            assert!((a - b).abs() < 1e-2, "zero-row logits diverged: {a} vs {b}");
        }
    }

    /// Per-row dynamic scales make batched and row-at-a-time quantized
    /// inference bit-identical — the property that lets call sites batch
    /// freely.
    #[test]
    fn batched_quant_is_bit_identical_to_rowwise() {
        let q = QuantNetwork::from_network(&paper_net(7));
        let mut rng = simrng::SimRng::seed_from_u64(19);
        let x = Matrix::from_fn(33, 9, |_, _| rng.gen_range(-1.0f32..1.0));
        let mut scratch = QuantScratch::new();
        let batched = q.forward_batch_into(&x, &mut scratch).clone();
        for i in 0..x.rows() {
            let one = Matrix::from_rows(&[x.row(i)]);
            let row = q.forward_batch_into(&one, &mut scratch).clone();
            for (a, b) in batched.row(i).iter().zip(row.row(0).iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "row {i} drifted under batching");
            }
        }
    }

    #[test]
    fn param_bytes_shrink_versus_f32() {
        let net = paper_net(1);
        let q = QuantNetwork::from_network(&net);
        assert!(q.param_bytes() < net.param_bytes());
    }

    #[test]
    #[should_panic(expected = "feature width mismatch")]
    fn predict_one_rejects_bad_width() {
        let q = QuantNetwork::from_network(&paper_net(1));
        let _ = q.predict_one(&[0.0; 4]);
    }
}
