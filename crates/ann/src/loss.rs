//! Classification loss: numerically stable softmax + cross-entropy.

use crate::matrix::Matrix;

/// Applies a numerically stable softmax to each row of `logits` in place.
pub fn softmax_rows(logits: &mut Matrix) {
    for i in 0..logits.rows() {
        let row = logits.row_mut(i);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
}

/// Mean cross-entropy of softmax(`logits`) against integer `labels`, and
/// the gradient w.r.t. the logits (`(softmax - onehot) / batch`).
///
/// # Panics
///
/// Panics if `labels.len() != logits.rows()` or a label is out of range.
pub fn softmax_cross_entropy(logits: &Matrix, labels: &[usize]) -> (f32, Matrix) {
    assert_eq!(labels.len(), logits.rows(), "one label per row required");
    let mut probs = logits.clone();
    softmax_rows(&mut probs);
    let batch = logits.rows() as f32;
    let mut loss = 0.0f32;
    for (i, &label) in labels.iter().enumerate() {
        assert!(label < logits.cols(), "label {label} out of range");
        let p = probs.get(i, label).max(1e-12);
        loss -= p.ln();
        // grad = (p - onehot)/batch, computed in place on the probs copy.
        let row = probs.row_mut(i);
        for v in row.iter_mut() {
            *v /= batch;
        }
        row[label] -= 1.0 / batch;
    }
    (loss / batch, probs)
}

/// Mean squared error between `pred` and `target`, and its gradient
/// (`2 (pred - target) / n_elements`). Provided for regression-style
/// extensions and gradient-check tests.
pub fn mse(pred: &Matrix, target: &Matrix) -> (f32, Matrix) {
    assert_eq!(pred.rows(), target.rows());
    assert_eq!(pred.cols(), target.cols());
    let n = (pred.rows() * pred.cols()) as f32;
    let mut grad = Matrix::zeros(pred.rows(), pred.cols());
    let mut loss = 0.0f32;
    for i in 0..pred.rows() {
        for j in 0..pred.cols() {
            let d = pred.get(i, j) - target.get(i, j);
            loss += d * d;
            grad.set(i, j, 2.0 * d / n);
        }
    }
    (loss / n, grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrng::{Rng, SimRng};

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[-5.0, 0.0, 5.0]]);
        softmax_rows(&mut m);
        for i in 0..2 {
            let s: f32 = m.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
            assert!(m.row(i).iter().all(|&p| p > 0.0));
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let mut a = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        let mut b = Matrix::from_rows(&[&[101.0, 102.0, 103.0]]);
        softmax_rows(&mut a);
        softmax_rows(&mut b);
        for j in 0..3 {
            assert!((a.get(0, j) - b.get(0, j)).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_handles_large_logits() {
        let mut m = Matrix::from_rows(&[&[1000.0, 0.0]]);
        softmax_rows(&mut m);
        assert!(m.get(0, 0).is_finite());
        assert!((m.get(0, 0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_of_perfect_prediction_is_small() {
        let logits = Matrix::from_rows(&[&[20.0, 0.0, 0.0]]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss < 1e-6);
    }

    #[test]
    fn cross_entropy_of_uniform_is_ln_k() {
        let logits = Matrix::from_rows(&[&[0.0, 0.0, 0.0, 0.0]]);
        let (loss, _) = softmax_cross_entropy(&logits, &[2]);
        assert!((loss - 4.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = Matrix::from_rows(&[&[0.3, -1.0, 2.0], &[0.0, 0.1, 0.2]]);
        let (_, grad) = softmax_cross_entropy(&logits, &[1, 2]);
        for i in 0..2 {
            let s: f32 = grad.row(i).iter().sum();
            assert!(s.abs() < 1e-6, "row {i} grad sum {s}");
        }
    }

    #[test]
    #[should_panic(expected = "label")]
    fn out_of_range_label_panics() {
        let logits = Matrix::from_rows(&[&[0.0, 0.0]]);
        let _ = softmax_cross_entropy(&logits, &[5]);
    }

    #[test]
    fn mse_known_value() {
        let pred = Matrix::from_rows(&[&[1.0, 2.0]]);
        let target = Matrix::from_rows(&[&[0.0, 0.0]]);
        let (loss, grad) = mse(&pred, &target);
        assert!((loss - 2.5).abs() < 1e-6);
        assert_eq!(grad.as_slice(), &[1.0, 2.0]);
    }

    /// The analytic logits gradient matches a central finite difference
    /// over a seeded sweep of random logits and labels.
    #[test]
    fn cross_entropy_gradient_check() {
        let mut rng = SimRng::seed_from_u64(201);
        for case in 0..64 {
            let vals: Vec<f32> = (0..6).map(|_| rng.gen_range(-2.0f32..2.0)).collect();
            let logits = Matrix::from_vec(2, 3, vals);
            let labels = [rng.gen_range(0usize..3), rng.gen_range(0usize..3)];
            let (_, grad) = softmax_cross_entropy(&logits, &labels);
            let h = 1e-2f32;
            for i in 0..2 {
                for j in 0..3 {
                    let mut plus = logits.clone();
                    plus.set(i, j, plus.get(i, j) + h);
                    let mut minus = logits.clone();
                    minus.set(i, j, minus.get(i, j) - h);
                    let (lp, _) = softmax_cross_entropy(&plus, &labels);
                    let (lm, _) = softmax_cross_entropy(&minus, &labels);
                    let numeric = (lp - lm) / (2.0 * h);
                    assert!(
                        (numeric - grad.get(i, j)).abs() < 5e-3,
                        "case {case} d logits[{i},{j}]: numeric {numeric} vs analytic {}",
                        grad.get(i, j)
                    );
                }
            }
        }
    }

    /// Loss is non-negative for any logits.
    #[test]
    fn loss_non_negative() {
        let mut rng = SimRng::seed_from_u64(202);
        for _ in 0..256 {
            let vals: Vec<f32> = (0..4).map(|_| rng.gen_range(-10.0f32..10.0)).collect();
            let logits = Matrix::from_vec(1, 4, vals);
            let (loss, _) = softmax_cross_entropy(&logits, &[rng.gen_range(0usize..4)]);
            assert!(loss >= 0.0);
        }
    }
}
