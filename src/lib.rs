//! Umbrella crate for the SSDKeeper reproduction.
//!
//! Re-exports the workspace crates so downstream users (and the examples
//! and integration tests in this repository) can depend on a single
//! package:
//!
//! * [`flash_sim`] — the discrete-event SSD simulator substrate;
//! * [`ann`] — the from-scratch neural-network library;
//! * [`workloads`] — synthetic and MSR-like workload generation;
//! * [`ssdkeeper`] — the paper's contribution: features collector,
//!   strategy learner, channel allocator, and hybrid page allocator;
//! * [`parallel`] — the scoped thread-pool used to fan out simulations.

pub use ann;
pub use flash_sim;
pub use parallel;
pub use ssdkeeper;
pub use workloads;
