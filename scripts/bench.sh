#!/usr/bin/env sh
# Tracked perf gate: runs the sim_throughput bench (events/sec on the
# sim_micro workload) and records the result in BENCH_sim.json at the
# repo root. The JSON keeps the first-ever run as the baseline, so every
# later run reports its speedup against the committed starting point.
#
# The JSON also records a "phases" section: mean per-command time in each
# simulated phase (unit wait, array op, bus wait, transfer, GC exec) plus
# mean queue depth, from the median run's PhaseReport.
#
# Env knobs (all optional):
#   SSDKEEPER_BENCH_ITERS   measured iterations  (default 10)
#   SSDKEEPER_BENCH_WARMUP  warmup iterations    (default 2)
#   SSDKEEPER_BENCH_JSON    output path          (default BENCH_sim.json)
#   SSDKEEPER_BENCH_PROBE   =1 also measures the run with an EventRecorder
#                           attached and prints the probe overhead vs the
#                           NullProbe path (the <=2% discipline check)
set -eu

cd "$(dirname "$0")/.."

# Absolute path: cargo runs bench binaries with the package directory as
# cwd, so a relative path would land inside crates/bench/.
SSDKEEPER_BENCH_JSON="${SSDKEEPER_BENCH_JSON:-$(pwd)/BENCH_sim.json}" \
    cargo bench --offline -q -p bench --bench sim_throughput
