#!/usr/bin/env sh
# Tracked perf gate: runs the sim_throughput bench (events/sec on the
# sim_micro workload), the fleet_scale bench (the fleet_1k scenario:
# 1000 tenants / 64 device shards, events/sec plus core-scaling
# efficiency), and the decision_throughput bench (decisions/sec for
# rowwise vs batched vs quantized allocator calls, plus label-farm
# labels/sec), recording all of them in BENCH_sim.json at the repo
# root. The JSON keeps the first-ever run as the baseline, so every
# later run reports its speedup against the committed starting point.
#
# The JSON also records a "phases" section: per-command time in each
# simulated phase (unit wait, array op, bus wait, transfer, GC exec) as
# mean + log2-bucketed p50/p99, plus the queue-depth distribution, from
# the median run's PhaseReport.
#
# After the run, `ssdtrace diff` compares the fresh numbers against the
# previous contents of the JSON (i.e. the committed state): events/sec
# dropping or a latency mean/percentile growing past the threshold prints
# a warning by default, or fails the script under SSDKEEPER_BENCH_STRICT=1
# — which is how CI holds the perf line.
#
# Env knobs (all optional):
#   SSDKEEPER_BENCH_ITERS      measured iterations  (default 10)
#   SSDKEEPER_BENCH_WARMUP     warmup iterations    (default 2)
#   SSDKEEPER_BENCH_JSON       output path          (default BENCH_sim.json)
#   SSDKEEPER_BENCH_PROBE      =1 also measures the run with an EventRecorder
#                              attached and prints the probe overhead vs the
#                              NullProbe path (the <=2% discipline check)
#   SSDKEEPER_BENCH_STRICT     =1 turns a regression warning into a failure
#   SSDKEEPER_BENCH_THRESHOLD  relative regression threshold (default 0.10)
set -eu

cd "$(dirname "$0")/.."

# Absolute path: cargo runs bench binaries with the package directory as
# cwd, so a relative path would land inside crates/bench/.
json_path="${SSDKEEPER_BENCH_JSON:-$(pwd)/BENCH_sim.json}"

# Snapshot the pre-run report so the post-run diff compares against what
# was committed, not against the file the bench just rewrote.
prev=""
if [ -f "$json_path" ]; then
    mkdir -p target
    prev="$(pwd)/target/bench_prev.json"
    cp "$json_path" "$prev"
fi

SSDKEEPER_BENCH_JSON="$json_path" \
    cargo bench --offline -q -p bench --bench sim_throughput

# The fleet bench splices its fleet_1k entry into the report the
# sim_throughput bench just rewrote; the pre-run snapshot carries the
# committed fleet_1k baseline across that rewrite.
SSDKEEPER_BENCH_JSON="$json_path" SSDKEEPER_BENCH_PREV="$prev" \
    cargo bench --offline -q -p bench --bench fleet_scale

# Decision layer: splices decision_throughput (rowwise vs batched vs
# quantized decisions/sec) and label_farm (labels/sec at 1 vs N workers)
# entries. Under SSDKEEPER_BENCH_STRICT=1 the bench itself enforces the
# batching bar (batched >= 3x rowwise, batch >= 64) in-process, and
# the ssdtrace diff below holds the recorded *_per_sec rows to the
# regression threshold like every other rate.
SSDKEEPER_BENCH_JSON="$json_path" SSDKEEPER_BENCH_PREV="$prev" \
    SSDKEEPER_BENCH_STRICT="${SSDKEEPER_BENCH_STRICT:-0}" \
    cargo bench --offline -q -p bench --bench decision_throughput

if [ -n "$prev" ]; then
    echo "==> ssdtrace diff vs previous $json_path"
    cargo build --offline -q --release -p trace-tools
    if ./target/release/ssdtrace diff "$prev" "$json_path" \
        --threshold "${SSDKEEPER_BENCH_THRESHOLD:-0.10}"; then
        :
    else
        if [ "${SSDKEEPER_BENCH_STRICT:-0}" != "0" ]; then
            echo "bench: FAIL - perf regression past threshold (SSDKEEPER_BENCH_STRICT=1)" >&2
            exit 1
        fi
        echo "bench: WARNING - regression vs previous report (warn-only;" \
            "set SSDKEEPER_BENCH_STRICT=1 to fail)" >&2
    fi

    # Tracing-off throughput line: under strict mode, events/sec must
    # also stay within 2% of the committed report — a tighter bar than
    # the general threshold above, specifically so obs instrumentation
    # left accidentally hot (or a broken const-fold of the disabled
    # path) cannot hide inside the default 10% slack. Only
    # *_events_per_sec regressions trip this; latency rows keep the
    # general threshold.
    if [ "${SSDKEEPER_BENCH_STRICT:-0}" != "0" ]; then
        echo "==> strict tracing-off throughput check (2% on events_per_sec)"
        tight="$(pwd)/target/bench_tight_diff.txt"
        ./target/release/ssdtrace diff "$prev" "$json_path" \
            --threshold 0.02 > "$tight" 2>&1 || true
        if grep 'events_per_sec' "$tight" | grep -q 'REGRESSION'; then
            echo "bench: FAIL - events_per_sec regressed past 2% with tracing off" >&2
            grep 'events_per_sec' "$tight" | grep 'REGRESSION' >&2
            exit 1
        fi
        echo "    events_per_sec within 2% of committed baseline"
    fi
fi
