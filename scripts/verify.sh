#!/usr/bin/env sh
# Pre-PR verification gate: the whole workspace must build, test, and
# (when rustfmt is installed) be formatted — all fully offline. This is
# the same sequence CI runs; if it passes here it passes there.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace

if cargo fmt --version >/dev/null 2>&1; then
    echo "==> cargo fmt --check"
    cargo fmt --all --check
else
    echo "==> cargo fmt not installed; skipping format check"
fi

# Opt-in perf smoke pass: SSDKEEPER_BENCH_SMOKE=1 runs the tracked
# sim_throughput bench with a few fast iterations. It exercises the
# whole bench path (and refreshes BENCH_sim.json) without making the
# default verify run depend on machine speed.
if [ "${SSDKEEPER_BENCH_SMOKE:-0}" != "0" ]; then
    echo "==> scripts/bench.sh (smoke: ${SSDKEEPER_BENCH_ITERS:-3} iters)"
    SSDKEEPER_BENCH_ITERS="${SSDKEEPER_BENCH_ITERS:-3}" sh scripts/bench.sh
fi

echo "verify: OK"
