#!/usr/bin/env sh
# Pre-PR verification gate: the whole workspace must build, test, and
# (when rustfmt is installed) be formatted — all fully offline. This is
# the same sequence CI runs; if it passes here it passes there.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace

# Lint gate: the workspace must be clippy-clean at -D warnings (skipped
# only where the component isn't installed).
if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy --workspace -- -D warnings"
    cargo clippy --workspace --offline -- -D warnings
else
    echo "==> cargo clippy not installed; skipping lint gate"
fi

# Allocation-discipline gate: a counting global allocator asserts the
# steady-state event loop allocates nothing after warmup, and that a
# full rebuild+rerun out of a recycled SimArena performs zero heap
# allocations. Runs in the workspace pass above too; kept explicit so a
# failure names the memory-discipline contract.
echo "==> zero-warm-allocation check (alloc_discipline)"
cargo test -q --offline -p flash-sim --test alloc_discipline

# Event-core oracle gate: the timer-wheel EventQueue must serve the exact
# (time, seq) sequence a reference binary heap serves over seeded random
# interleavings — same-tick bursts, horizon overflow, and the engine's
# arrival-cursor merge pattern included. Runs as part of the workspace
# tests above too; kept explicit so a failure names the equivalence suite.
echo "==> event-core oracle equivalence suite"
cargo test -q --offline -p flash-sim --test event_oracle

if cargo fmt --version >/dev/null 2>&1; then
    echo "==> cargo fmt --check"
    cargo fmt --all --check
else
    echo "==> cargo fmt not installed; skipping format check"
fi

# Golden-summary gate: the deterministic miniature capture must
# summarize to byte-identical JSON. Catches unintended changes to the
# simulator's timing, the probe stream, the SSDP codec, or the ssdtrace
# renderers — any intentional change regenerates the golden (see the
# instructions printed on failure).
echo "==> ssdtrace golden-summary check"
golden_dir="$(pwd)/target/ssdtrace_golden"
mkdir -p "$golden_dir"
./target/release/ssdtrace sample "$golden_dir/sample.ssdp"
./target/release/ssdtrace summarize --json "$golden_dir/sample.ssdp" \
    > "$golden_dir/summary.json"
if ! cmp -s "$golden_dir/summary.json" tests/golden/ssdtrace_summary.json; then
    echo "verify: FAIL - ssdtrace summary diverged from tests/golden/ssdtrace_summary.json" >&2
    diff -u tests/golden/ssdtrace_summary.json "$golden_dir/summary.json" >&2 || true
    echo "If this change is intentional, regenerate the golden with:" >&2
    echo "  target/release/ssdtrace sample \$t.ssdp && target/release/ssdtrace summarize --json \$t.ssdp > tests/golden/ssdtrace_summary.json" >&2
    exit 1
fi

# Fleet determinism gate: the merged fleet digest must be a pure
# function of the scenario, never of the worker count. Runs the small
# smoke scenario pinned to 1 worker and again at 4 and compares the
# printed digest lines byte-for-byte (the same property the fleet crate's
# digest_is_identical_across_1_4_8_workers test pins in-process; this
# checks it end-to-end through the release binary).
echo "==> fleet determinism check (1 vs 4 workers)"
fleet_w1=$(./target/release/fleet --smoke --seed 42 --workers 1 | grep '^fleet digest:')
fleet_w4=$(./target/release/fleet --smoke --seed 42 --workers 4 | grep '^fleet digest:')
if [ "$fleet_w1" != "$fleet_w4" ] || [ -z "$fleet_w1" ]; then
    echo "verify: FAIL - fleet digest depends on worker count" >&2
    echo "  1 worker:  $fleet_w1" >&2
    echo "  4 workers: $fleet_w4" >&2
    exit 1
fi
echo "    $fleet_w1 (identical at both worker counts)"

# The deprecated keeper run_* shims are gone (call sites use
# Keeper::run(RunSpec)); only the simulator's limit_cmd_slots shim
# remains deprecated. No allowlist needed — nothing in-tree may call it.
echo "==> deprecated-API call-site gate"
deprecated_hits=$(grep -rnE '\.limit_cmd_slots\(' \
    crates tests examples --include='*.rs' 2>/dev/null || true)
if [ -n "$deprecated_hits" ]; then
    echo "verify: FAIL - new call sites of deprecated APIs found:" >&2
    echo "$deprecated_hits" >&2
    echo "use SimBuilder::cmd_slot_limit instead." >&2
    exit 1
fi

# Decision-layer agreement gate: the decide binary pushes one corpus
# through the rowwise, batched, and quantized allocator paths and exits
# non-zero if any row's decision diverges; the digest line is the
# determinism handle (a pure function of --seed/--batch).
echo "==> decision-layer agreement check (decide --smoke)"
decide_out=$(./target/release/decide --smoke | grep '^decide digest:')
if [ -z "$decide_out" ]; then
    echo "verify: FAIL - decide --smoke produced no digest" >&2
    exit 1
fi
echo "    $decide_out (rowwise, batched, and quantized paths agree)"

# Backend gate: replay --smoke runs the same mix through the simulated
# backend and the real-I/O file backend (tmpfile target) under one
# keeper session, and both runs must succeed with the same decision
# (replay exits 2 if the backends disagree). The sim-side SSDP capture
# is pinned by sha256: the Backend refactor must keep the simulated
# path byte-identical, forever. The measured capture is then compared
# with ssdtrace diff, which may legitimately flag regressions past its
# threshold (modeled vs measured time): exit 0/1 are both fine there,
# >=2 means the capture or summarizer is broken.
echo "==> backend replay check (sim vs file, tmpfile target)"
replay_dir="$(pwd)/target/replay_verify"
mkdir -p "$replay_dir"
./target/release/replay --smoke \
    --capture-sim "$replay_dir/sim.ssdp" \
    --capture-file "$replay_dir/file.ssdp" > "$replay_dir/replay.txt"
sed 's/^/    /' "$replay_dir/replay.txt" | head -3
sim_sha=$(sha256sum "$replay_dir/sim.ssdp" | cut -d' ' -f1)
golden_sha=$(cat tests/golden/replay_sim_capture.sha256)
if [ "$sim_sha" != "$golden_sha" ]; then
    echo "verify: FAIL - sim-backend replay capture diverged from golden sha256" >&2
    echo "  expected $golden_sha" >&2
    echo "  got      $sim_sha" >&2
    echo "If this change is intentional, regenerate with:" >&2
    echo "  target/release/replay --smoke --capture-sim \$t.ssdp --capture-file /dev/null && sha256sum \$t.ssdp | cut -d' ' -f1 > tests/golden/replay_sim_capture.sha256" >&2
    exit 1
fi
echo "    sim capture sha256 matches golden ($sim_sha)"
./target/release/ssdtrace summarize --json "$replay_dir/sim.ssdp" > "$replay_dir/sim.json"
./target/release/ssdtrace summarize --json "$replay_dir/file.ssdp" > "$replay_dir/file.json"
diff_rc=0
./target/release/ssdtrace diff "$replay_dir/sim.json" "$replay_dir/file.json" \
    > "$replay_dir/diff.txt" 2>&1 || diff_rc=$?
if [ "$diff_rc" -ge 2 ]; then
    echo "verify: FAIL - ssdtrace diff errored (exit $diff_rc) on the replay captures" >&2
    cat "$replay_dir/diff.txt" >&2
    exit 1
fi
echo "    ssdtrace diff compared modeled vs measured (exit $diff_rc)"

# Telemetry gate: rebuild the fleet binary with host tracing compiled
# in (separate target dir so the default target/ fingerprints — and the
# uninstrumented binaries every gate above measures — stay untouched),
# stream a smoke run's counters and spans, and hold the obs layer to
# its contract: every NDJSON line parses (ssdtrace live is strict), the
# final snapshot's fleet.events_observed equals the merged event count
# in the run's own JSON (exact — the counter is summed from the same
# per-shard metrics; --replacements 0 so no shard is re-simulated), and
# the folded spans parse and attribute real time. The span-name golden
# test then pins *which* code paths are instrumented.
echo "==> host-trace telemetry gate (fleet --smoke --telemetry)"
cargo build --release --offline -p exp --features host-trace \
    --target-dir target/host-trace
tel_dir="$(pwd)/target/telemetry_verify"
mkdir -p "$tel_dir"
SSDKEEPER_TELEMETRY_MS=50 ./target/host-trace/release/fleet \
    --smoke --seed 42 --replacements 0 --workers 2 --json \
    --telemetry "$tel_dir/tel.ndjson" --spans "$tel_dir/spans.folded" \
    > "$tel_dir/fleet.json" 2> "$tel_dir/fleet.log"
./target/release/ssdtrace live "$tel_dir/tel.ndjson" > "$tel_dir/live.txt"
sed 's/^/    /' "$tel_dir/live.txt" | head -2
tel_events=$(./target/release/ssdtrace live "$tel_dir/tel.ndjson" \
    --counter fleet.events_observed)
json_events=$(grep -o '"events": *[0-9]*' "$tel_dir/fleet.json" \
    | head -1 | grep -o '[0-9]*$')
if [ -z "$tel_events" ] || [ "$tel_events" != "$json_events" ]; then
    echo "verify: FAIL - telemetry fleet.events_observed ($tel_events) !=" \
        "merged events ($json_events)" >&2
    exit 1
fi
echo "    final fleet.events_observed matches merged events ($tel_events)"
./target/release/ssdtrace flame "$tel_dir/spans.folded" --top 5 \
    | sed 's/^/    /'
echo "==> flame span-name golden (cargo test -p exp --features host-trace)"
cargo test -q --offline -p exp --features host-trace --test flame_golden \
    --target-dir target/host-trace

# BENCH=1 additionally smokes the probe-overhead path: the sim_throughput
# bench with a recorder attached (SSDKEEPER_BENCH_PROBE=1), a few fast
# iterations, JSON routed to target/ so the tracked BENCH_sim.json keeps
# its committed numbers.
if [ "${BENCH:-0}" != "0" ]; then
    echo "==> probe-overhead bench smoke (SSDKEEPER_BENCH_PROBE=1)"
    SSDKEEPER_BENCH_ITERS="${SSDKEEPER_BENCH_ITERS:-3}" \
        SSDKEEPER_BENCH_PROBE=1 \
        SSDKEEPER_BENCH_JSON="$(pwd)/target/bench_probe_smoke.json" \
        sh scripts/bench.sh
fi

# Opt-in perf smoke pass: SSDKEEPER_BENCH_SMOKE=1 runs the tracked
# sim_throughput bench with a few fast iterations. It exercises the
# whole bench path (and refreshes BENCH_sim.json) without making the
# default verify run depend on machine speed.
if [ "${SSDKEEPER_BENCH_SMOKE:-0}" != "0" ]; then
    echo "==> scripts/bench.sh (smoke: ${SSDKEEPER_BENCH_ITERS:-3} iters)"
    SSDKEEPER_BENCH_ITERS="${SSDKEEPER_BENCH_ITERS:-3}" sh scripts/bench.sh
fi

echo "verify: OK"
