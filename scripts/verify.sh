#!/usr/bin/env sh
# Pre-PR verification gate: the whole workspace must build, test, and
# (when rustfmt is installed) be formatted — all fully offline. This is
# the same sequence CI runs; if it passes here it passes there.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace

if cargo fmt --version >/dev/null 2>&1; then
    echo "==> cargo fmt --check"
    cargo fmt --all --check
else
    echo "==> cargo fmt not installed; skipping format check"
fi

echo "verify: OK"
