//! End-to-end integration: Algorithm 1 (label + train) feeding
//! Algorithm 2 (observe + predict + re-allocate), across all five crates.

use ssdkeeper_repro::flash_sim::SsdConfig;
use ssdkeeper_repro::parallel::PoolConfig;
use ssdkeeper_repro::ssdkeeper::keeper::{Keeper, KeeperConfig, RunSpec};
use ssdkeeper_repro::ssdkeeper::label::EvalConfig;
use ssdkeeper_repro::ssdkeeper::learner::{DatasetSpec, Learner, OptimizerChoice};
use ssdkeeper_repro::ssdkeeper::Strategy;
use ssdkeeper_repro::workloads::{generate_tenant_stream, mix_chronological, TenantSpec};

fn small_spec(samples: usize) -> DatasetSpec {
    DatasetSpec {
        samples,
        requests_per_sample: 600,
        max_total_iops: 120_000.0,
        lpn_space: 1 << 10,
        label_tolerance: 0.02,
        eval: EvalConfig {
            ssd: SsdConfig {
                blocks_per_plane: 64,
                pages_per_block: 32,
                ..SsdConfig::paper_table1()
            },
            hybrid: false,
            pool: PoolConfig::with_workers(1),
        },
    }
}

#[test]
fn pipeline_produces_a_working_allocator() {
    let learner = Learner::new(small_spec(24));
    let dataset = learner.generate_dataset(5);
    assert_eq!(dataset.samples.len(), 24);
    assert!(dataset.samples.iter().all(|s| s.label < 42));

    let model = learner.train_with(&dataset, OptimizerChoice::AdamLogistic, 30, 1);
    assert_eq!(model.history.loss.len(), 30);
    assert!(
        model.history.final_loss() < model.history.loss[0],
        "training must reduce loss: {:?}",
        model.history.loss
    );

    // The deployed allocator must serve predictions for any feature vector.
    let allocator = model.allocator();
    let keeper = Keeper::new(
        KeeperConfig {
            ssd: small_spec(1).eval.ssd,
            observe_window_ns: 10_000_000,
            hybrid: true,
        },
        allocator,
    );
    let streams: Vec<_> = [
        TenantSpec::synthetic("a", 0.9, 20_000.0, 1 << 10),
        TenantSpec::synthetic("b", 0.1, 30_000.0, 1 << 10),
        TenantSpec::synthetic("c", 0.95, 10_000.0, 1 << 10),
        TenantSpec::synthetic("d", 0.05, 20_000.0, 1 << 10),
    ]
    .iter()
    .enumerate()
    .map(|(t, s)| generate_tenant_stream(s, t as u16, 2_000, t as u64))
    .collect();
    let trace = mix_chronological(&streams, 6_000);

    let outcome = keeper
        .run(RunSpec::adapt_once(&trace, &[1 << 10; 4]))
        .unwrap();
    assert_eq!(outcome.report.total.count as usize, trace.len());
    assert!(outcome.strategy.index(4) < 42);
    // The observed characteristics must match the tenants' dominances.
    let features = outcome.features.expect("adapt-once computes features");
    assert_eq!(features.rw_char, [0, 1, 0, 1]);
}

#[test]
fn model_round_trips_through_text_format_with_identical_predictions() {
    let learner = Learner::new(small_spec(16));
    let dataset = learner.generate_dataset(6);
    let model = learner.train_with(&dataset, OptimizerChoice::AdamRelu, 15, 2);

    let text = ann::io::format_network(&model.network);
    let reloaded = ann::io::parse_network(&text).unwrap();
    assert_eq!(reloaded, model.network);

    let original = ssdkeeper_repro::ssdkeeper::ChannelAllocator::new(
        model.network.clone(),
        model.max_total_iops,
    );
    let restored =
        ssdkeeper_repro::ssdkeeper::ChannelAllocator::new(reloaded, model.max_total_iops);
    for s in &dataset.samples {
        assert_eq!(original.predict(&s.features), restored.predict(&s.features));
    }
}

#[test]
fn adaptive_run_tracks_the_statically_best_strategy_on_a_clear_case() {
    // Construct a case where the device is overwhelmed unless readers get
    // most channels: a light writer and an overwhelming reader group.
    let learner = Learner::new(small_spec(1));
    let _ = learner; // (training skipped; this test checks ground truth)

    let cfg = small_spec(1).eval.ssd;
    let specs = [
        TenantSpec::synthetic("w", 1.0, 6_000.0, 1 << 10),
        TenantSpec::synthetic("r1", 0.0, 40_000.0, 1 << 10),
        TenantSpec::synthetic("r2", 0.0, 40_000.0, 1 << 10),
        TenantSpec::synthetic("r3", 0.0, 30_000.0, 1 << 10),
    ];
    let streams: Vec<_> = specs
        .iter()
        .enumerate()
        .map(|(t, s)| generate_tenant_stream(s, t as u16, 3_000, 77 + t as u64))
        .collect();
    let trace = mix_chronological(&streams, 10_000);

    let eval = EvalConfig {
        ssd: cfg,
        hybrid: false,
        pool: PoolConfig::with_workers(1),
    };
    let evals =
        ssdkeeper_repro::ssdkeeper::label::evaluate_all(&trace, 4, &[1 << 10; 4], &eval).unwrap();
    let best = ssdkeeper_repro::ssdkeeper::label::best_strategy_with_tolerance(&evals, 0.02);
    // Giving the writer most channels must be far from optimal here.
    let write_hog = evals
        .iter()
        .find(|e| e.strategy == Strategy::TwoPart { write_channels: 7 })
        .unwrap();
    assert!(
        best.metric_us * 2.0 < write_hog.metric_us,
        "7:1 ({:.0}us) should be at least 2x worse than best {} ({:.0}us)",
        write_hog.metric_us,
        best.strategy,
        best.metric_us
    );
}
