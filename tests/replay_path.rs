//! The real-trace path end to end: MSR CSV text → block records →
//! page requests → profile → simulator → keeper. Uses an in-memory CSV
//! standing in for a downloaded MSR-Cambridge file.

use ssdkeeper_repro::flash_sim::{Simulator, SsdConfig, TenantLayout};
use ssdkeeper_repro::workloads::{
    mix_chronological, parse_msr_csv, profile, to_page_requests, ReplayConfig,
};

/// Builds a small MSR-style CSV: a read-heavy stream with sequential runs
/// and an interleaved writer.
fn synthetic_csv() -> String {
    let mut out = String::from("Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime\n");
    let base: u64 = 128_166_372_000_000_000;
    for i in 0..400u64 {
        // Reader: 32 KB sequential reads every 50 µs (500 ticks).
        out.push_str(&format!(
            "{},web,0,Read,{},32768,100\n",
            base + i * 500,
            (i % 64) * 32_768
        ));
        // Writer: 16 KB random-ish writes every 200 µs.
        if i % 4 == 0 {
            out.push_str(&format!(
                "{},prxy,0,Write,{},16384,100\n",
                base + i * 500 + 100,
                ((i * 7919) % 128) * 16_384
            ));
        }
    }
    out
}

#[test]
fn csv_replay_profiles_and_simulates() {
    let csv = synthetic_csv();
    let records = parse_msr_csv(&csv).unwrap();
    assert_eq!(records.len(), 500);

    // Split per host into tenants.
    let readers: Vec<_> = records
        .iter()
        .filter(|r| r.host == "web")
        .cloned()
        .collect();
    let writers: Vec<_> = records
        .iter()
        .filter(|r| r.host == "prxy")
        .cloned()
        .collect();
    let mut cfg0 = ReplayConfig::new(0);
    cfg0.lpn_space = 1 << 10;
    let mut cfg1 = ReplayConfig::new(1);
    cfg1.lpn_space = 1 << 10;
    let t0 = to_page_requests(&readers, &cfg0);
    let t1 = to_page_requests(&writers, &cfg1);

    // Profiles reflect the constructed characteristics.
    let p0 = profile(&t0, None).unwrap();
    assert_eq!(p0.write_ratio, 0.0);
    assert!(
        p0.sequentiality > 0.5,
        "sequential reads: {}",
        p0.sequentiality
    );
    assert!((p0.mean_size_pages - 2.0).abs() < 1e-9, "32 KB = 2 pages");
    let p1 = profile(&t1, None).unwrap();
    assert_eq!(p1.write_ratio, 1.0);

    // Mix and drive the simulator.
    let mixed = mix_chronological(&[t0, t1], usize::MAX);
    assert_eq!(mixed.len(), 500);
    let ssd = SsdConfig {
        blocks_per_plane: 64,
        pages_per_block: 32,
        ..SsdConfig::paper_table1()
    };
    let layout = TenantLayout::shared(2, &ssd).with_lpn_space_all(1 << 10);
    let report = Simulator::new(ssd, layout).unwrap().run(&mixed).unwrap();
    assert_eq!(report.total.count, 500);
    assert_eq!(report.read.count, 400);
    assert_eq!(report.write.count, 100);
    // Reads are multi-page: command count exceeds request count.
    assert!(report.read_breakdown.cmds >= 800);
}

#[test]
fn time_compression_pushes_replay_into_contention() {
    let csv = synthetic_csv();
    let records = parse_msr_csv(&csv).unwrap();
    let run = |compression: f64| {
        let mut cfg = ReplayConfig::new(0);
        cfg.lpn_space = 1 << 10;
        cfg.time_compression = compression;
        let trace = to_page_requests(&records, &cfg);
        let ssd = SsdConfig {
            blocks_per_plane: 64,
            pages_per_block: 32,
            ..SsdConfig::paper_table1()
        };
        let layout = TenantLayout::shared(1, &ssd).with_lpn_space_all(1 << 10);
        Simulator::new(ssd, layout).unwrap().run(&trace).unwrap()
    };
    let real_time = run(1.0);
    let compressed = run(50.0);
    assert!(
        compressed.read.mean_us() > real_time.read.mean_us(),
        "50x compression must raise contention: {} vs {}",
        compressed.read.mean_us(),
        real_time.read.mean_us()
    );
    // Conservation regardless of compression.
    assert_eq!(real_time.total.count, compressed.total.count);
}
