//! Property tests over the whole simulator: for arbitrary (valid) traces
//! and layouts, conservation and latency bounds must hold.
//!
//! Cases are generated from fixed `simrng` seeds so failures reproduce
//! exactly; each property runs 48 seeded cases, mirroring the proptest
//! configuration this file previously used.

use simrng::{Rng, SimRng};
use ssdkeeper_repro::flash_sim::{
    IoRequest, Op, PageAllocPolicy, Simulator, SsdConfig, TenantLayout,
};

const CASES: u64 = 48;

fn test_cfg(plane_parallelism: bool) -> SsdConfig {
    SsdConfig {
        channels: 4,
        chips_per_channel: 2,
        dies_per_chip: 1,
        planes_per_die: 2,
        blocks_per_plane: 32,
        pages_per_block: 16,
        plane_parallelism,
        ..SsdConfig::small_test()
    }
}

/// A random, sorted, valid trace of up to 150 requests over two tenants,
/// fully determined by the RNG state.
fn arb_trace(rng: &mut SimRng) -> Vec<IoRequest> {
    let len = rng.gen_range(1usize..150);
    let mut trace: Vec<IoRequest> = (0..len)
        .map(|_| IoRequest {
            id: 0,
            tenant: rng.gen_range(0u16..2),
            op: if rng.gen() { Op::Read } else { Op::Write },
            lpn: rng.gen_range(0u64..512),
            size_pages: rng.gen_range(1u32..4),
            arrival_ns: rng.gen_range(0u64..2_000_000),
        })
        .collect();
    trace.sort_by_key(|r| r.arrival_ns);
    for (i, r) in trace.iter_mut().enumerate() {
        r.id = i as u64;
    }
    trace
}

/// Every request completes exactly once, per tenant and per class.
#[test]
fn conservation() {
    for seed in 0..CASES {
        let mut rng = SimRng::seed_from_u64(seed);
        let trace = arb_trace(&mut rng);
        let plane_par: bool = rng.gen();
        let cfg = test_cfg(plane_par);
        let layout = TenantLayout::shared(2, &cfg).with_lpn_space_all(512);
        let report = Simulator::new(cfg, layout).unwrap().run(&trace).unwrap();
        assert_eq!(report.total.count as usize, trace.len(), "seed {seed}");
        let reads = trace.iter().filter(|r| r.op == Op::Read).count() as u64;
        assert_eq!(report.read.count, reads, "seed {seed}");
        assert_eq!(
            report.write.count,
            trace.len() as u64 - reads,
            "seed {seed}"
        );
        let per_tenant: u64 = report
            .tenants
            .iter()
            .map(|t| t.read.count + t.write.count)
            .sum();
        assert_eq!(per_tenant, trace.len() as u64, "seed {seed}");
    }
}

/// No request finishes faster than its unloaded service time.
#[test]
fn latency_lower_bounds() {
    for seed in 0..CASES {
        let mut rng = SimRng::seed_from_u64(1000 + seed);
        let trace = arb_trace(&mut rng);
        let cfg = test_cfg(true);
        let transfer = cfg.page_transfer_ns();
        let read_min = cfg.read_latency_ns + transfer;
        let write_min = transfer + cfg.write_latency_ns;
        let layout = TenantLayout::shared(2, &cfg).with_lpn_space_all(512);
        let report = Simulator::new(cfg, layout).unwrap().run(&trace).unwrap();
        if report.read.count > 0 {
            assert!(report.read.min_ns >= read_min, "seed {seed}");
        }
        if report.write.count > 0 {
            assert!(report.write.min_ns >= write_min, "seed {seed}");
        }
        // Makespan is at least the last arrival plus one service time.
        let last = trace.last().unwrap().arrival_ns;
        assert!(report.makespan_ns > last, "seed {seed}");
    }
}

/// Dynamic allocation changes placement, never correctness.
#[test]
fn dynamic_policy_preserves_conservation() {
    for seed in 0..CASES {
        let mut rng = SimRng::seed_from_u64(2000 + seed);
        let trace = arb_trace(&mut rng);
        let cfg = test_cfg(true);
        let layout = TenantLayout::shared(2, &cfg)
            .with_lpn_space_all(512)
            .with_policy(0, PageAllocPolicy::Dynamic)
            .with_policy(1, PageAllocPolicy::Dynamic);
        let report = Simulator::new(cfg, layout).unwrap().run(&trace).unwrap();
        assert_eq!(report.total.count as usize, trace.len(), "seed {seed}");
        // Breakdown accounting is per page-command; request latency is the
        // max over a request's commands. They coincide for single-page
        // traces and the command-level total can only be larger otherwise.
        let breakdown = report.read_breakdown.total_ns() + report.write_breakdown.total_ns();
        let latency_sums = report.read.sum_ns + report.write.sum_ns;
        if trace.iter().all(|r| r.size_pages == 1) {
            assert_eq!(breakdown, latency_sums, "seed {seed}");
        } else {
            assert!(breakdown >= latency_sums, "seed {seed}");
        }
    }
}

/// Isolated tenants never interact: tenant 0's report is identical
/// whether tenant 1's trace exists or not.
#[test]
fn isolation_is_complete() {
    for seed in 0..CASES {
        let mut rng = SimRng::seed_from_u64(3000 + seed);
        let trace = arb_trace(&mut rng);
        let cfg = test_cfg(true);
        let t0_only: Vec<IoRequest> = trace
            .iter()
            .filter(|r| r.tenant == 0)
            .cloned()
            .enumerate()
            .map(|(i, mut r)| {
                r.id = i as u64;
                r
            })
            .collect();
        if t0_only.is_empty() {
            continue;
        }

        let run_pair = |tr: &[IoRequest]| {
            let layout = TenantLayout::isolated(2, &cfg).with_lpn_space_all(512);
            Simulator::new(cfg.clone(), layout)
                .unwrap()
                .run(tr)
                .unwrap()
        };
        let with_neighbor = run_pair(&trace);
        let alone = run_pair(&t0_only);
        assert_eq!(
            with_neighbor.tenants[0].read.sum_ns, alone.tenants[0].read.sum_ns,
            "seed {seed}"
        );
        assert_eq!(
            with_neighbor.tenants[0].write.sum_ns, alone.tenants[0].write.sum_ns,
            "seed {seed}"
        );
    }
}
