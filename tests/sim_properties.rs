//! Property tests over the whole simulator: for arbitrary (valid) traces
//! and layouts, conservation and latency bounds must hold.

use proptest::prelude::*;
use ssdkeeper_repro::flash_sim::{
    IoRequest, Op, PageAllocPolicy, Simulator, SsdConfig, TenantLayout,
};

fn test_cfg(plane_parallelism: bool) -> SsdConfig {
    SsdConfig {
        channels: 4,
        chips_per_channel: 2,
        dies_per_chip: 1,
        planes_per_die: 2,
        blocks_per_plane: 32,
        pages_per_block: 16,
        plane_parallelism,
        ..SsdConfig::small_test()
    }
}

/// Strategy for a random, sorted, valid trace of up to 150 requests over
/// two tenants.
fn arb_trace() -> impl Strategy<Value = Vec<IoRequest>> {
    proptest::collection::vec(
        (
            0u16..2,                 // tenant
            proptest::bool::ANY,     // is_read
            0u64..512,               // lpn
            1u32..4,                 // size
            0u64..2_000_000,         // arrival offset
        ),
        1..150,
    )
    .prop_map(|rows| {
        let mut trace: Vec<IoRequest> = rows
            .into_iter()
            .map(|(tenant, is_read, lpn, size, at)| IoRequest {
                id: 0,
                tenant,
                op: if is_read { Op::Read } else { Op::Write },
                lpn,
                size_pages: size,
                arrival_ns: at,
            })
            .collect();
        trace.sort_by_key(|r| r.arrival_ns);
        for (i, r) in trace.iter_mut().enumerate() {
            r.id = i as u64;
        }
        trace
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every request completes exactly once, per tenant and per class.
    #[test]
    fn conservation(trace in arb_trace(), plane_par in proptest::bool::ANY) {
        let cfg = test_cfg(plane_par);
        let layout = TenantLayout::shared(2, &cfg).with_lpn_space_all(512);
        let report = Simulator::new(cfg, layout).unwrap().run(&trace).unwrap();
        prop_assert_eq!(report.total.count as usize, trace.len());
        let reads = trace.iter().filter(|r| r.op == Op::Read).count() as u64;
        prop_assert_eq!(report.read.count, reads);
        prop_assert_eq!(report.write.count, trace.len() as u64 - reads);
        let per_tenant: u64 = report.tenants.iter().map(|t| t.read.count + t.write.count).sum();
        prop_assert_eq!(per_tenant, trace.len() as u64);
    }

    /// No request finishes faster than its unloaded service time.
    #[test]
    fn latency_lower_bounds(trace in arb_trace()) {
        let cfg = test_cfg(true);
        let transfer = cfg.page_transfer_ns();
        let read_min = cfg.read_latency_ns + transfer;
        let write_min = transfer + cfg.write_latency_ns;
        let layout = TenantLayout::shared(2, &cfg).with_lpn_space_all(512);
        let report = Simulator::new(cfg, layout).unwrap().run(&trace).unwrap();
        if report.read.count > 0 {
            prop_assert!(report.read.min_ns >= read_min);
        }
        if report.write.count > 0 {
            prop_assert!(report.write.min_ns >= write_min);
        }
        // Makespan is at least the last arrival plus one service time.
        let last = trace.last().unwrap().arrival_ns;
        prop_assert!(report.makespan_ns > last);
    }

    /// Dynamic allocation changes placement, never correctness.
    #[test]
    fn dynamic_policy_preserves_conservation(trace in arb_trace()) {
        let cfg = test_cfg(true);
        let layout = TenantLayout::shared(2, &cfg)
            .with_lpn_space_all(512)
            .with_policy(0, PageAllocPolicy::Dynamic)
            .with_policy(1, PageAllocPolicy::Dynamic);
        let report = Simulator::new(cfg, layout).unwrap().run(&trace).unwrap();
        prop_assert_eq!(report.total.count as usize, trace.len());
        // Breakdown accounting is per page-command; request latency is the
        // max over a request's commands. They coincide for single-page
        // traces and the command-level total can only be larger otherwise.
        let breakdown = report.read_breakdown.total_ns() + report.write_breakdown.total_ns();
        let latency_sums = report.read.sum_ns + report.write.sum_ns;
        if trace.iter().all(|r| r.size_pages == 1) {
            prop_assert_eq!(breakdown, latency_sums);
        } else {
            prop_assert!(breakdown >= latency_sums);
        }
    }

    /// Isolated tenants never interact: tenant 0's report is identical
    /// whether tenant 1's trace exists or not.
    #[test]
    fn isolation_is_complete(trace in arb_trace()) {
        let cfg = test_cfg(true);
        let t0_only: Vec<IoRequest> = trace
            .iter()
            .filter(|r| r.tenant == 0)
            .cloned()
            .enumerate()
            .map(|(i, mut r)| { r.id = i as u64; r })
            .collect();
        prop_assume!(!t0_only.is_empty());

        let run_pair = |tr: &[IoRequest]| {
            let layout = TenantLayout::isolated(2, &cfg).with_lpn_space_all(512);
            Simulator::new(cfg.clone(), layout).unwrap().run(tr).unwrap()
        };
        let with_neighbor = run_pair(&trace);
        let alone = run_pair(&t0_only);
        prop_assert_eq!(
            with_neighbor.tenants[0].read.sum_ns,
            alone.tenants[0].read.sum_ns
        );
        prop_assert_eq!(
            with_neighbor.tenants[0].write.sum_ns,
            alone.tenants[0].write.sum_ns
        );
    }
}
