//! The offline label generator extracts features from whole traces
//! (rate-based level); the online keeper extracts them from a fixed
//! observation window (count-based level with a window-calibrated scale).
//! For stationary workloads the two views must agree — otherwise the
//! model would be trained and queried in different coordinate systems.

use ssdkeeper_repro::ssdkeeper::features::TENANTS;
use ssdkeeper_repro::ssdkeeper::FeatureVector;
use ssdkeeper_repro::workloads::{
    generate_tenant_stream, mix_chronological, IntensityScale, ObservedFeatures, TenantSpec,
};

const MAX_IOPS: f64 = 120_000.0;

fn stationary_mix(total_iops: f64, n: usize) -> Vec<ssdkeeper_repro::flash_sim::IoRequest> {
    let shares = [0.4, 0.3, 0.2, 0.1];
    let ratios = [0.9, 0.1, 0.8, 0.2];
    let streams: Vec<_> = shares
        .iter()
        .zip(ratios.iter())
        .enumerate()
        .map(|(t, (&share, &wr))| {
            let spec =
                TenantSpec::synthetic(format!("t{t}"), wr, (total_iops * share).max(1.0), 1 << 12);
            generate_tenant_stream(&spec, t as u16, (n as f64 * share * 1.5) as usize, t as u64)
        })
        .collect();
    mix_chronological(&streams, n)
}

#[test]
fn window_and_trace_features_agree_for_stationary_workloads() {
    for &total_iops in &[20_000.0f64, 60_000.0, 100_000.0] {
        let trace = stationary_mix(total_iops, 30_000);

        // Offline view (label generation).
        let offline = FeatureVector::from_trace(&trace, TENANTS, MAX_IOPS);

        // Online view (keeper): a 100 ms window.
        let window_ns = 100_000_000u64;
        let obs = ObservedFeatures::collect(&trace, TENANTS, window_ns);
        let scale = IntensityScale::new(MAX_IOPS * (window_ns as f64 / 1e9));
        let online = FeatureVector::from_observed(&obs, &scale);

        let dl = (offline.intensity_level as i64 - online.intensity_level as i64).abs();
        assert!(
            dl <= 1,
            "levels diverge at {total_iops} IOPS: offline {} vs online {}",
            offline.intensity_level,
            online.intensity_level
        );
        assert_eq!(
            offline.rw_char, online.rw_char,
            "characteristics must match"
        );
        for t in 0..TENANTS {
            assert!(
                (offline.shares[t] - online.shares[t]).abs() < 0.05,
                "tenant {t} share diverges: {} vs {}",
                offline.shares[t],
                online.shares[t]
            );
        }
    }
}

#[test]
fn intensity_levels_span_the_scale() {
    // Sweeping the true rate across [0, max] must sweep levels across
    // 0..20 roughly linearly.
    let mut last_level = 0;
    for step in 1..=10 {
        let iops = MAX_IOPS * step as f64 / 10.0 * 0.95;
        let trace = stationary_mix(iops, 8_000);
        let fv = FeatureVector::from_trace(&trace, TENANTS, MAX_IOPS);
        assert!(
            fv.intensity_level >= last_level,
            "levels must be monotone in rate: {} then {}",
            last_level,
            fv.intensity_level
        );
        last_level = fv.intensity_level;
    }
    assert!(
        last_level >= 17,
        "top of the sweep should reach level >=17, got {last_level}"
    );
}
