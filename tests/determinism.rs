//! Reproducibility across the whole stack: identical seeds must produce
//! bit-identical traces, labels, models, and simulation reports.

use ssdkeeper_repro::flash_sim::trace::{decode_trace, encode_trace};
use ssdkeeper_repro::flash_sim::{Simulator, SsdConfig, TenantLayout};
use ssdkeeper_repro::parallel::PoolConfig;
use ssdkeeper_repro::ssdkeeper::label::EvalConfig;
use ssdkeeper_repro::ssdkeeper::learner::{DatasetSpec, Learner, OptimizerChoice};
use ssdkeeper_repro::workloads::{generate_tenant_stream, mix_chronological, TenantSpec};

fn spec() -> DatasetSpec {
    DatasetSpec {
        samples: 6,
        requests_per_sample: 400,
        max_total_iops: 120_000.0,
        lpn_space: 1 << 10,
        label_tolerance: 0.02,
        eval: EvalConfig {
            ssd: SsdConfig {
                blocks_per_plane: 64,
                pages_per_block: 32,
                ..SsdConfig::paper_table1()
            },
            hybrid: false,
            pool: PoolConfig::with_workers(2),
        },
    }
}

#[test]
fn trace_generation_is_seed_deterministic() {
    let t = TenantSpec::synthetic("t", 0.4, 10_000.0, 1 << 12);
    let a = generate_tenant_stream(&t, 0, 5_000, 42);
    let b = generate_tenant_stream(&t, 0, 5_000, 42);
    assert_eq!(a, b);
}

#[test]
fn simulation_reports_are_identical_across_runs() {
    let cfg = SsdConfig {
        blocks_per_plane: 64,
        pages_per_block: 32,
        ..SsdConfig::paper_table1()
    };
    let streams: Vec<_> = (0..2)
        .map(|t| {
            generate_tenant_stream(
                &TenantSpec::synthetic(format!("t{t}"), 0.5, 20_000.0, 1 << 10),
                t as u16,
                3_000,
                t as u64,
            )
        })
        .collect();
    let trace = mix_chronological(&streams, 6_000);
    let run = || {
        let layout = TenantLayout::shared(2, &cfg).with_lpn_space_all(1 << 10);
        Simulator::new(cfg.clone(), layout)
            .unwrap()
            .run(&trace)
            .unwrap()
    };
    assert_eq!(run(), run());
}

#[test]
fn dataset_and_model_are_deterministic_even_with_parallel_labelling() {
    // The thread pool fans strategies out, but results are collected in
    // input order, so labels must not depend on scheduling.
    let learner = Learner::new(spec());
    let d1 = learner.generate_dataset(9);
    let d2 = learner.generate_dataset(9);
    for (a, b) in d1.samples.iter().zip(&d2.samples) {
        assert_eq!(a.label, b.label);
        assert_eq!(a.features, b.features);
        assert_eq!(a.best_metric_us, b.best_metric_us);
    }
    let m1 = learner.train_with(&d1, OptimizerChoice::AdamLogistic, 10, 4);
    let m2 = learner.train_with(&d2, OptimizerChoice::AdamLogistic, 10, 4);
    assert_eq!(m1.network, m2.network);
    assert_eq!(m1.history.loss, m2.history.loss);
}

#[test]
fn persisted_traces_replay_identically() {
    let cfg = SsdConfig {
        blocks_per_plane: 64,
        pages_per_block: 32,
        ..SsdConfig::paper_table1()
    };
    let t = TenantSpec::synthetic("t", 0.3, 15_000.0, 1 << 10);
    let trace = generate_tenant_stream(&t, 0, 2_000, 3);

    let decoded = decode_trace(&encode_trace(&trace)).unwrap();
    assert_eq!(decoded, trace);

    let run = |tr: &[ssdkeeper_repro::flash_sim::IoRequest]| {
        let layout = TenantLayout::shared(1, &cfg).with_lpn_space_all(1 << 10);
        Simulator::new(cfg.clone(), layout)
            .unwrap()
            .run(tr)
            .unwrap()
    };
    assert_eq!(run(&trace), run(&decoded));
}
