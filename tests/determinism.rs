//! Reproducibility across the whole stack: identical seeds must produce
//! bit-identical traces, labels, models, and simulation reports.

use ssdkeeper_repro::flash_sim::trace::{decode_trace, encode_trace};
use ssdkeeper_repro::flash_sim::{
    IoRequest, Op, PageAllocPolicy, Reallocation, SimReport, Simulator, SsdConfig, TenantLayout,
};
use ssdkeeper_repro::parallel::PoolConfig;
use ssdkeeper_repro::ssdkeeper::label::EvalConfig;
use ssdkeeper_repro::ssdkeeper::learner::{DatasetSpec, Learner, OptimizerChoice};
use ssdkeeper_repro::workloads::{generate_tenant_stream, mix_chronological, TenantSpec};

fn spec() -> DatasetSpec {
    DatasetSpec {
        samples: 6,
        requests_per_sample: 400,
        max_total_iops: 120_000.0,
        lpn_space: 1 << 10,
        label_tolerance: 0.02,
        eval: EvalConfig {
            ssd: SsdConfig {
                blocks_per_plane: 64,
                pages_per_block: 32,
                ..SsdConfig::paper_table1()
            },
            hybrid: false,
            pool: PoolConfig::with_workers(2),
        },
    }
}

#[test]
fn trace_generation_is_seed_deterministic() {
    let t = TenantSpec::synthetic("t", 0.4, 10_000.0, 1 << 12);
    let a = generate_tenant_stream(&t, 0, 5_000, 42);
    let b = generate_tenant_stream(&t, 0, 5_000, 42);
    assert_eq!(a, b);
}

#[test]
fn simulation_reports_are_identical_across_runs() {
    let cfg = SsdConfig {
        blocks_per_plane: 64,
        pages_per_block: 32,
        ..SsdConfig::paper_table1()
    };
    let streams: Vec<_> = (0..2)
        .map(|t| {
            generate_tenant_stream(
                &TenantSpec::synthetic(format!("t{t}"), 0.5, 20_000.0, 1 << 10),
                t as u16,
                3_000,
                t as u64,
            )
        })
        .collect();
    let trace = mix_chronological(&streams, 6_000);
    let run = || {
        let layout = TenantLayout::shared(2, &cfg).with_lpn_space_all(1 << 10);
        Simulator::new(cfg.clone(), layout)
            .unwrap()
            .run(&trace)
            .unwrap()
    };
    assert_eq!(run(), run());
}

#[test]
fn dataset_and_model_are_deterministic_even_with_parallel_labelling() {
    // The thread pool fans strategies out, but results are collected in
    // input order, so labels must not depend on scheduling.
    let learner = Learner::new(spec());
    let d1 = learner.generate_dataset(9);
    let d2 = learner.generate_dataset(9);
    for (a, b) in d1.samples.iter().zip(&d2.samples) {
        assert_eq!(a.label, b.label);
        assert_eq!(a.features, b.features);
        assert_eq!(a.best_metric_us, b.best_metric_us);
    }
    let m1 = learner.train_with(&d1, OptimizerChoice::AdamLogistic, 10, 4);
    let m2 = learner.train_with(&d2, OptimizerChoice::AdamLogistic, 10, 4);
    assert_eq!(m1.network, m2.network);
    assert_eq!(m1.history.loss, m2.history.loss);
}

/// FNV-1a over the report's `Debug` rendering: every counter, histogram
/// bucket, and breakdown field participates, so two reports hash equal
/// iff they are byte-identical.
fn report_digest(report: &SimReport) -> u64 {
    let text = format!("{report:?}");
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in text.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fixture A: two tenants (one dynamic-policy writer, one reader) on a
/// GC-pressured device with wear leveling, host queueing, and a mid-run
/// channel reallocation — every stateful subsystem participates.
fn gc_wear_realloc_report() -> SimReport {
    let cfg = SsdConfig {
        blocks_per_plane: 16,
        pages_per_block: 16,
        gc_free_block_threshold: 0.3,
        wear_leveling_threshold: 4,
        host_queue_depth: 8,
        ..SsdConfig::paper_table1()
    };
    let streams: Vec<_> = [(0u16, 0.9, 5u64), (1u16, 0.2, 6u64)]
        .iter()
        .map(|&(tenant, write_ratio, seed)| {
            let lpn_space = if tenant == 0 { 6144 } else { 3072 };
            generate_tenant_stream(
                &TenantSpec::synthetic(format!("t{tenant}"), write_ratio, 40_000.0, lpn_space),
                tenant,
                if tenant == 0 { 2_500 } else { 1_500 },
                seed,
            )
        })
        .collect();
    let trace = mix_chronological(&streams, 4_000);
    let layout = TenantLayout::shared(2, &cfg)
        .with_lpn_space(0, 6144)
        .with_lpn_space(1, 3072)
        .with_policy(0, PageAllocPolicy::Dynamic);
    let mut sim = Simulator::new(cfg, layout).unwrap();
    sim.precondition(&[1.0, 1.0]).unwrap();
    sim.schedule_reallocation(Reallocation::new(
        30_000_000,
        vec![
            (0, vec![0, 1, 2, 3], Some(PageAllocPolicy::Dynamic)),
            (1, vec![4, 5, 6, 7], Some(PageAllocPolicy::Static)),
        ],
    ))
    .unwrap();
    sim.run(&trace).unwrap()
}

/// Fixture B: one tenant hammering a hot region on a tiny read-priority
/// device (die-level parallelism only), GC constantly active.
fn read_priority_hot_report() -> SimReport {
    let cfg = SsdConfig {
        gc_free_block_threshold: 0.25,
        plane_parallelism: false,
        host_queue_depth: 2,
        ..SsdConfig::small_test()
    };
    let layout = TenantLayout::shared(1, &cfg).with_lpn_space_all(96);
    let mut sim = Simulator::new(cfg, layout).unwrap();
    sim.precondition(&[0.75]).unwrap();
    let trace: Vec<IoRequest> = (0..2_000u64)
        .map(|i| {
            let op = if i % 5 == 4 { Op::Read } else { Op::Write };
            IoRequest::new(i, 0, op, (i * 13) % 96, 1, i * 3_000)
        })
        .collect();
    sim.run(&trace).unwrap()
}

/// Byte-identity pin against the pre-arena, pre-indexed-GC engine: the
/// event counts and makespans below were captured from the scan-based
/// `pick_victim` and the monotonically growing command arena; the
/// free-list arena and the bucketed victim index must reproduce them
/// exactly. The digests were re-captured when `SimReport` grew the
/// `phases` breakdown (which changes the `Debug` rendering but none of
/// the timing): the unchanged events/makespan pins prove the engine
/// still schedules identically.
#[test]
fn sim_reports_match_pre_arena_goldens() {
    let a = gc_wear_realloc_report();
    let b = read_priority_hot_report();
    if std::env::var("SSDKEEPER_PRINT_GOLDEN").is_ok() {
        println!(
            "fixture A: digest {:#018x} events {} makespan {} gc {} moved {}",
            report_digest(&a),
            a.events_processed,
            a.makespan_ns,
            a.ftl.gc_invocations,
            a.ftl.gc_pages_moved
        );
        println!(
            "fixture B: digest {:#018x} events {} makespan {} gc {} moved {}",
            report_digest(&b),
            b.events_processed,
            b.makespan_ns,
            b.ftl.gc_invocations,
            b.ftl.gc_pages_moved
        );
    }
    assert!(a.ftl.gc_invocations > 0, "fixture A must exercise GC");
    assert!(b.ftl.gc_invocations > 0, "fixture B must exercise GC");
    assert_eq!(report_digest(&a), 0x8472_9607_9262_4922);
    assert_eq!(a.events_processed, 16_038);
    assert_eq!(a.makespan_ns, 97_785_251);
    assert_eq!(report_digest(&b), 0xe4ab_76a8_2d32_2857);
    assert_eq!(b.events_processed, 8_182);
    assert_eq!(b.makespan_ns, 322_483_000);
}

/// The thread-pool fan-out must be invisible in the results: the same
/// fig2 sweep with one worker and with `auto()` workers has to produce
/// bit-identical latencies for every strategy at every write proportion.
#[test]
fn fig2_sweep_is_identical_across_worker_counts() {
    let base = exp::fig2::Fig2Config {
        requests: 600,
        total_iops: 60_000.0,
        lpn_space: 1 << 10,
        ssd: SsdConfig {
            blocks_per_plane: 64,
            pages_per_block: 32,
            ..SsdConfig::paper_table1()
        },
        pool: PoolConfig::with_workers(1),
        seed: 7,
    };
    let serial = exp::fig2::run(&base);
    let parallel = exp::fig2::run(&exp::fig2::Fig2Config {
        pool: PoolConfig::auto(),
        ..base
    });
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.write_pct, p.write_pct);
        assert_eq!(s.evals.len(), p.evals.len());
        for (se, pe) in s.evals.iter().zip(&p.evals) {
            assert_eq!(se.strategy, pe.strategy);
            assert_eq!(se.read_us.to_bits(), pe.read_us.to_bits());
            assert_eq!(se.write_us.to_bits(), pe.write_us.to_bits());
            assert_eq!(se.metric_us.to_bits(), pe.metric_us.to_bits());
        }
    }
}

#[test]
fn persisted_traces_replay_identically() {
    let cfg = SsdConfig {
        blocks_per_plane: 64,
        pages_per_block: 32,
        ..SsdConfig::paper_table1()
    };
    let t = TenantSpec::synthetic("t", 0.3, 15_000.0, 1 << 10);
    let trace = generate_tenant_stream(&t, 0, 2_000, 3);

    let decoded = decode_trace(&encode_trace(&trace)).unwrap();
    assert_eq!(decoded, trace);

    let run = |tr: &[ssdkeeper_repro::flash_sim::IoRequest]| {
        let layout = TenantLayout::shared(1, &cfg).with_lpn_space_all(1 << 10);
        Simulator::new(cfg.clone(), layout)
            .unwrap()
            .run(tr)
            .unwrap()
    };
    assert_eq!(run(&trace), run(&decoded));
}
