//! Probe-layer guarantees, end to end:
//!
//! 1. Observation is free of observable effects — the golden determinism
//!    fixtures produce byte-identical reports with `NullProbe` and with a
//!    bounded `EventRecorder` attached.
//! 2. The recorder's ring buffer drops oldest-first with a monotone drop
//!    counter, and the persisted SSDP codec round-trips what remains.
//! 3. The deprecated keeper entry points and the unified
//!    `Keeper::run(RunSpec)` produce identical outcomes on a seeded
//!    fig2-style workload (this file is allowlisted for the deprecated
//!    calls in `scripts/verify.sh`).

use ssdkeeper_repro::flash_sim::probe::decode_events;
use ssdkeeper_repro::flash_sim::{
    EventRecorder, IoRequest, Op, PageAllocPolicy, Probe, ProbeEvent, Reallocation, SimBuilder,
    SimReport, Simulator, SsdConfig, TenantLayout,
};
use ssdkeeper_repro::ssdkeeper::keeper::{Keeper, KeeperConfig, RunSpec};
use ssdkeeper_repro::ssdkeeper::{ChannelAllocator, Strategy};
use ssdkeeper_repro::workloads::{generate_tenant_stream, mix_chronological, TenantSpec};

/// FNV-1a over the report's `Debug` rendering (the determinism suite's
/// digest, duplicated here so the two test binaries stay independent).
fn report_digest(report: &SimReport) -> u64 {
    let text = format!("{report:?}");
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in text.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The determinism suite's fixture A (GC + wear leveling + host queueing
/// + mid-run reallocation), parameterized over an optional recorder.
fn gc_wear_realloc_report(probe: Option<&mut EventRecorder>) -> SimReport {
    let cfg = SsdConfig {
        blocks_per_plane: 16,
        pages_per_block: 16,
        gc_free_block_threshold: 0.3,
        wear_leveling_threshold: 4,
        host_queue_depth: 8,
        ..SsdConfig::paper_table1()
    };
    let streams: Vec<_> = [(0u16, 0.9, 5u64), (1u16, 0.2, 6u64)]
        .iter()
        .map(|&(tenant, write_ratio, seed)| {
            let lpn_space = if tenant == 0 { 6144 } else { 3072 };
            generate_tenant_stream(
                &TenantSpec::synthetic(format!("t{tenant}"), write_ratio, 40_000.0, lpn_space),
                tenant,
                if tenant == 0 { 2_500 } else { 1_500 },
                seed,
            )
        })
        .collect();
    let trace = mix_chronological(&streams, 4_000);
    let layout = TenantLayout::shared(2, &cfg)
        .with_lpn_space(0, 6144)
        .with_lpn_space(1, 3072)
        .with_policy(0, PageAllocPolicy::Dynamic);
    let realloc = Reallocation::new(
        30_000_000,
        vec![
            (0, vec![0, 1, 2, 3], Some(PageAllocPolicy::Dynamic)),
            (1, vec![4, 5, 6, 7], Some(PageAllocPolicy::Static)),
        ],
    );
    let builder = SimBuilder::new(cfg, layout).precondition(&[1.0, 1.0]);
    match probe {
        Some(rec) => {
            let mut sim = builder.probe(rec).build().unwrap();
            sim.schedule_reallocation(realloc).unwrap();
            sim.run(&trace).unwrap()
        }
        None => {
            let mut sim = builder.build().unwrap();
            sim.schedule_reallocation(realloc).unwrap();
            sim.run(&trace).unwrap()
        }
    }
}

#[test]
fn golden_digest_is_byte_identical_with_and_without_a_recorder() {
    let bare = gc_wear_realloc_report(None);
    let mut rec = EventRecorder::with_capacity(1 << 20);
    let observed = gc_wear_realloc_report(Some(&mut rec));
    assert_eq!(report_digest(&bare), report_digest(&observed));
    assert_eq!(bare, observed);
    // The recorder actually saw the run it did not perturb.
    assert!(rec.len() > 0, "recorder captured no events");
    assert_eq!(rec.dropped(), 0, "capacity was sized to capture everything");
    let reallocs = rec
        .events()
        .filter(|e| matches!(e, ProbeEvent::Realloc(_)))
        .count();
    assert_eq!(reallocs, 2, "one ReallocApply per reallocation entry");
}

#[test]
fn recorder_events_round_trip_through_the_codec() {
    let mut rec = EventRecorder::with_capacity(1 << 20);
    let _ = gc_wear_realloc_report(Some(&mut rec));
    let bytes = rec.encode();
    let (events, dropped) = decode_events(&bytes).unwrap();
    assert_eq!(events.len(), rec.len());
    assert_eq!(dropped, rec.dropped());
    assert_eq!(events, rec.to_vec());
}

#[test]
fn ring_buffer_overflow_drops_oldest_with_a_monotone_counter() {
    let capacity = 64;
    let mut rec = EventRecorder::with_capacity(capacity);
    let _ = gc_wear_realloc_report(Some(&mut rec));
    assert_eq!(rec.len(), capacity, "buffer filled to capacity");
    assert!(rec.dropped() > 0, "fixture emits far more than 64 events");
    // What remains is the newest suffix: timestamps still non-decreasing,
    // and the first retained event is no older than anything dropped
    // would have been (compare against a full capture).
    let mut full = EventRecorder::with_capacity(1 << 20);
    let _ = gc_wear_realloc_report(Some(&mut full));
    assert_eq!(rec.dropped(), full.len() as u64 - capacity as u64);
    let tail: Vec<_> = full.to_vec().split_off(full.len() - capacity);
    assert_eq!(rec.to_vec(), tail, "retained events are the newest suffix");
}

/// Per-phase accounting sanity: a single command cannot spend longer in
/// any phase than the whole run took, so every per-command phase mean
/// (and, up to the log₂ bucket edge, every percentile) is bounded by the
/// makespan. This is the regression guard for the old BENCH_sim.json
/// `wait_unit_mean_ns` confusion: the number was real but measured an
/// unbounded open-loop backlog, and a unit-accounting bug (summing over
/// queued commands, dividing by the wrong denominator) would blow past
/// this bound immediately.
#[test]
fn phase_means_are_bounded_by_the_makespan_per_command() {
    let report = gc_wear_realloc_report(None);
    let makespan = report.makespan_ns;
    assert!(makespan > 0);
    let phases = &report.phases;
    for (name, h) in [
        ("wait_unit", &phases.wait_unit),
        ("array", &phases.array),
        ("wait_bus", &phases.wait_bus),
        ("transfer", &phases.transfer),
        ("gc_exec", &phases.gc_exec),
    ] {
        assert!(
            h.mean() <= makespan as f64,
            "{name}: mean {} exceeds makespan {makespan}",
            h.mean()
        );
        // The percentile estimator returns the upper bucket edge, which
        // errs high by at most 2x over the largest true sample.
        assert!(
            h.percentile(1.0) <= makespan.saturating_mul(2),
            "{name}: p100 {} exceeds 2x makespan {makespan}",
            h.percentile(1.0)
        );
    }
    // Host queueing in this fixture is bounded (qd 8), so commands are
    // admitted against backpressure and waits stay well under the
    // makespan — the regime the sim_micro bench now also runs in.
    assert!(phases.wait_unit.count > 0);
}

/// A seeded fig2-style workload: four tenants with distinct read/write
/// dominances at moderate intensity on a small device.
fn fig2_style_trace() -> (Vec<IoRequest>, [u64; 4]) {
    let specs = [
        TenantSpec::synthetic("w-heavy", 0.95, 18_000.0, 1 << 10),
        TenantSpec::synthetic("r-heavy", 0.05, 22_000.0, 1 << 10),
        TenantSpec::synthetic("w-mid", 0.80, 9_000.0, 1 << 10),
        TenantSpec::synthetic("r-mid", 0.20, 11_000.0, 1 << 10),
    ];
    let streams: Vec<_> = specs
        .iter()
        .enumerate()
        .map(|(t, s)| generate_tenant_stream(s, t as u16, 2_000, 1_234 + t as u64))
        .collect();
    (mix_chronological(&streams, 6_000), [1 << 10; 4])
}

fn small_keeper(hybrid: bool) -> Keeper {
    let ssd = SsdConfig {
        blocks_per_plane: 64,
        pages_per_block: 32,
        ..SsdConfig::paper_table1()
    };
    let net = ssdkeeper_repro::ann::Network::paper_topology(
        ssdkeeper_repro::ann::Activation::Logistic,
        3,
    );
    Keeper::new(
        KeeperConfig {
            ssd,
            observe_window_ns: 10_000_000,
            hybrid,
        },
        ChannelAllocator::new(net, 120_000.0),
    )
}

#[test]
fn keeper_run_modes_hold_their_contracts_on_a_seeded_workload() {
    let (trace, lpn_spaces) = fig2_style_trace();
    for hybrid in [false, true] {
        let keeper = small_keeper(hybrid);

        let fixed = keeper
            .run(RunSpec::fixed(&trace, &lpn_spaces, Strategy::Isolated))
            .unwrap();
        assert_eq!(fixed.strategy, Strategy::Isolated);
        assert!(fixed.features.is_none());
        assert!(fixed.decisions.is_empty());

        let adaptive = keeper
            .run(RunSpec::adapt_once(&trace, &lpn_spaces))
            .unwrap();
        assert!(adaptive.features.is_some());
        assert!(adaptive.strategy.index(4) < 42);

        let periodic = keeper
            .run(RunSpec::periodic(
                &trace,
                &lpn_spaces,
                keeper.config().observe_window_ns,
            ))
            .unwrap();
        // Periodic decisions carry strictly increasing timestamps and
        // only record strategy *changes* (adjacent decisions differ).
        for pair in periodic.decisions.windows(2) {
            assert!(pair[0].at_ns < pair[1].at_ns);
            assert_ne!(pair[0].strategy, pair[1].strategy);
        }
        // All runs process the identical trace.
        assert_eq!(fixed.report.total.count, adaptive.report.total.count);
        assert_eq!(fixed.report.total.count, periodic.report.total.count);
    }
}

#[test]
fn keeper_session_with_probe_reports_identically_and_sees_decisions() {
    let (trace, lpn_spaces) = fig2_style_trace();
    let keeper = small_keeper(false);
    let bare = keeper
        .run(RunSpec::adapt_once(&trace, &lpn_spaces))
        .unwrap();
    let mut rec = EventRecorder::with_capacity(1 << 20);
    let observed = keeper
        .run(RunSpec::adapt_once(&trace, &lpn_spaces).with_probe(&mut rec))
        .unwrap();
    assert_eq!(bare.report, observed.report);
    assert_eq!(bare.strategy, observed.strategy);
    let decisions: Vec<_> = rec
        .events()
        .filter_map(|e| match e {
            ProbeEvent::Decision(d) => Some(d),
            _ => None,
        })
        .collect();
    assert_eq!(decisions.len(), 1, "adapt-once makes exactly one decision");
    assert_eq!(decisions[0].at_ns, keeper.config().observe_window_ns);
}

#[test]
fn legacy_simulator_construction_matches_the_builder() {
    // `Simulator::new` + mutating precondition (the pre-builder idiom,
    // still used by the determinism fixtures) and the fluent builder
    // must construct bit-identical engines.
    let cfg = SsdConfig {
        gc_free_block_threshold: 0.25,
        plane_parallelism: false,
        host_queue_depth: 2,
        ..SsdConfig::small_test()
    };
    let trace: Vec<IoRequest> = (0..1_500u64)
        .map(|i| {
            let op = if i % 5 == 4 { Op::Read } else { Op::Write };
            IoRequest::new(i, 0, op, (i * 13) % 96, 1, i * 3_000)
        })
        .collect();
    let layout = || TenantLayout::shared(1, &cfg).with_lpn_space_all(96);
    let mut legacy = Simulator::new(cfg.clone(), layout()).unwrap();
    legacy.precondition(&[0.75]).unwrap();
    let legacy_report = legacy.run(&trace).unwrap();
    let builder_report = SimBuilder::new(cfg.clone(), layout())
        .precondition(&[0.75])
        .build()
        .unwrap()
        .run(&trace)
        .unwrap();
    assert_eq!(legacy_report, builder_report);
}

#[test]
fn null_probe_is_a_zero_sized_default() {
    // The no-probe simulator must not pay for the hook points: the
    // default probe is a ZST the optimizer erases.
    assert_eq!(
        std::mem::size_of::<ssdkeeper_repro::flash_sim::NullProbe>(),
        0
    );
    let mut p = ssdkeeper_repro::flash_sim::NullProbe;
    // Hooks are callable with default empty bodies.
    p.on_gc_collect(&ssdkeeper_repro::flash_sim::probe::GcCollect {
        at_ns: 0,
        plane: 0,
        victim_block: 0,
        moved_pages: 0,
        erased_blocks: 0,
        duration_ns: 0,
    });
}
