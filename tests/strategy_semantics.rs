//! Cross-crate semantic checks of the strategy space: partitioning really
//! isolates, sharing really pools, and the hybrid allocator changes only
//! what it should.

use ssdkeeper_repro::flash_sim::{IoRequest, Op, SsdConfig};
use ssdkeeper_repro::parallel::PoolConfig;
use ssdkeeper_repro::ssdkeeper::label::{run_under_strategy, EvalConfig};
use ssdkeeper_repro::ssdkeeper::Strategy;
use ssdkeeper_repro::workloads::{generate_tenant_stream, mix_chronological, TenantSpec};

fn eval() -> EvalConfig {
    EvalConfig {
        ssd: SsdConfig {
            blocks_per_plane: 64,
            pages_per_block: 32,
            ..SsdConfig::paper_table1()
        },
        hybrid: false,
        pool: PoolConfig::with_workers(1),
    }
}

/// A victim tenant with light, periodic reads plus an aggressor tenant
/// hammering writes.
fn victim_aggressor_trace() -> Vec<IoRequest> {
    let victim = TenantSpec::synthetic("victim", 0.0, 2_000.0, 1 << 10);
    let aggressor = TenantSpec::synthetic("aggressor", 1.0, 90_000.0, 1 << 10);
    let v = generate_tenant_stream(&victim, 0, 500, 1);
    let a = generate_tenant_stream(&aggressor, 1, 20_000, 2);
    mix_chronological(&[v, a], usize::MAX)
}

#[test]
fn isolation_protects_the_victim_from_a_noisy_neighbor() {
    let trace = victim_aggressor_trace();
    let spaces = [1 << 10, 1 << 10];
    // rw chars: victim reads (1), aggressor writes (0).
    let shared = run_under_strategy(&trace, Strategy::Shared, &[1, 0], &spaces, &eval()).unwrap();
    let isolated =
        run_under_strategy(&trace, Strategy::Isolated, &[1, 0], &spaces, &eval()).unwrap();
    // The victim's reads must be dramatically faster when isolated from
    // the write-saturated aggressor (the paper's noisy-neighbor effect).
    let shared_victim = shared.tenants[0].read.mean_us();
    let isolated_victim = isolated.tenants[0].read.mean_us();
    assert!(
        isolated_victim * 5.0 < shared_victim,
        "isolated victim reads {isolated_victim:.1}us should be >=5x faster than shared {shared_victim:.1}us"
    );
}

#[test]
fn two_part_split_confines_tenants_to_their_groups() {
    // Write group gets 1 channel: its throughput collapses while the read
    // group (7 channels) is unaffected — observable through latencies.
    let trace = victim_aggressor_trace();
    let spaces = [1 << 10, 1 << 10];
    let w1 = run_under_strategy(
        &trace,
        Strategy::TwoPart { write_channels: 1 },
        &[1, 0],
        &spaces,
        &eval(),
    )
    .unwrap();
    // Victim (read group, 7 channels) stays fast.
    assert!(
        w1.tenants[0].read.mean_us() < 300.0,
        "victim reads {:.1}us",
        w1.tenants[0].read.mean_us()
    );
    // Aggressor (write group, 1 channel at 90k IOPS) is fully saturated.
    assert!(
        w1.tenants[1].write.mean_us() > 10_000.0,
        "aggressor writes {:.1}us",
        w1.tenants[1].write.mean_us()
    );
}

#[test]
fn four_part_assignment_is_positional() {
    // Four identical read-only tenants; tenant 2 gets 5 channels under
    // [1,1,5,1] and must see the lowest read latency.
    let specs: Vec<TenantSpec> = (0..4)
        .map(|t| TenantSpec::synthetic(format!("t{t}"), 0.0, 25_000.0, 1 << 10))
        .collect();
    let streams: Vec<_> = specs
        .iter()
        .enumerate()
        .map(|(t, s)| generate_tenant_stream(s, t as u16, 4_000, 5 + t as u64))
        .collect();
    let trace = mix_chronological(&streams, 14_000);
    let report = run_under_strategy(
        &trace,
        Strategy::FourPart([1, 1, 5, 1]),
        &[1, 1, 1, 1],
        &[1 << 10; 4],
        &eval(),
    )
    .unwrap();
    let reads: Vec<f64> = report.tenants.iter().map(|t| t.read.mean_us()).collect();
    for (i, &r) in reads.iter().enumerate() {
        if i != 2 {
            assert!(
                reads[2] < r,
                "tenant 2 (5 channels) should beat tenant {i}: {reads:?}"
            );
        }
    }
}

#[test]
fn all_42_strategies_complete_on_a_generic_mix() {
    let specs: Vec<TenantSpec> = vec![
        TenantSpec::synthetic("a", 0.9, 10_000.0, 1 << 10),
        TenantSpec::synthetic("b", 0.1, 10_000.0, 1 << 10),
        TenantSpec::synthetic("c", 0.8, 10_000.0, 1 << 10),
        TenantSpec::synthetic("d", 0.2, 10_000.0, 1 << 10),
    ];
    let streams: Vec<_> = specs
        .iter()
        .enumerate()
        .map(|(t, s)| generate_tenant_stream(s, t as u16, 500, 31 + t as u64))
        .collect();
    let trace = mix_chronological(&streams, 2_000);
    for strategy in Strategy::all_for_tenants(4) {
        let report = run_under_strategy(&trace, strategy, &[0, 1, 0, 1], &[1 << 10; 4], &eval())
            .unwrap_or_else(|e| panic!("{strategy} failed: {e}"));
        assert_eq!(report.total.count, 2_000, "{strategy} lost requests");
    }
}

#[test]
fn reads_follow_data_after_reallocation() {
    // Write everything to channel 0, re-allocate the tenant to channel 7,
    // then read the old data: the reads must still succeed (they follow
    // the mapping table) and new writes must not conflict with them.
    use ssdkeeper_repro::flash_sim::sim::Reallocation;
    use ssdkeeper_repro::flash_sim::{Simulator, TenantLayout};

    let cfg = eval().ssd;
    let layout = ssdkeeper_repro::flash_sim::TenantLayout::from_channel_lists(&[vec![0]], &cfg)
        .unwrap()
        .with_lpn_space_all(256);
    let _ = TenantLayout::shared(1, &cfg); // type in scope
    let mut sim = Simulator::new(cfg, layout).unwrap();
    sim.schedule_reallocation(Reallocation::new(1_000_000, vec![(0, vec![7], None)]))
        .unwrap();
    let mut trace: Vec<IoRequest> = (0..64)
        .map(|i| IoRequest::new(i, 0, Op::Write, i, 1, i * 1_000))
        .collect();
    // After the switch: read the old data and write new data concurrently.
    for i in 0..64u64 {
        trace.push(IoRequest::new(
            100 + i,
            0,
            Op::Read,
            i,
            1,
            2_000_000 + i * 1_000,
        ));
        trace.push(IoRequest::new(
            200 + i,
            0,
            Op::Write,
            128 + i,
            1,
            2_000_000 + i * 1_000,
        ));
    }
    trace.sort_by_key(|r| r.arrival_ns);
    for (i, r) in trace.iter_mut().enumerate() {
        r.id = i as u64;
    }
    let report = sim.run(&trace).unwrap();
    assert_eq!(report.total.count as usize, trace.len());
    assert_eq!(report.read.count, 64);
}
